package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"xseed"
)

// Replication support: a primary exports its durable state per synopsis —
// the base snapshot verbatim and delta-log byte ranges at record
// boundaries — and a standby imports them, adopting the primary's
// generation numbers. Because both sides move verbatim file bytes, a
// caught-up standby's (base, log) pair is bit-identical to the primary's:
// replaying it yields the same synopsis, which is what makes failover
// estimates reproducible. The delta log doubles as the per-target
// replication queue — senders tail it at their own acked cursors, so a
// slow standby lags without ever backpressuring the write path.

// ErrSeqMismatch reports that a replication operation addressed a
// generation the store is not on: the primary compacted (new seq), the
// standby lost its copy, or a segment offset diverged from the log end.
// The sender recovers by re-shipping the base.
var ErrSeqMismatch = errors.New("store: replication generation mismatch")

// BaseMeta is the manifest metadata that travels with a shipped base.
type BaseMeta struct {
	Source  string
	Created time.Time
	Budget  int    // last applied SetBudget total (0 = never)
	Ver     uint64 // cache-scope version to resume from
}

// BaseExport is one synopsis's base snapshot as shipped to a standby:
// the generation number, its metadata, and the base file bytes verbatim.
type BaseExport struct {
	Seq  uint64
	Meta BaseMeta
	Data []byte
}

// Tail reports a synopsis's current generation and delta-log size — the
// position a replication sender targets. ok is false when the synopsis is
// not persisted here.
func (st *Store) Tail(name string) (seq uint64, size int64, ok bool) {
	s, err := st.syn(name)
	if err != nil {
		return 0, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq, s.logSize, true
}

// ReadSegment reads up to max bytes of the delta log of generation seq
// starting at byte offset off. Offsets at acked positions are record
// boundaries, and the log is append-only within a generation, so the
// returned bytes are always whole records. A generation swap (compaction)
// between the offset being taken and the read lands as ErrSeqMismatch.
func (st *Store) ReadSegment(name string, seq uint64, off, max int64) ([]byte, error) {
	s, err := st.syn(name)
	if err != nil {
		return nil, ErrSeqMismatch
	}
	s.mu.Lock()
	if s.seq != seq {
		s.mu.Unlock()
		return nil, ErrSeqMismatch
	}
	size := s.logSize
	path := filepath.Join(s.dir, deltaFile(seq))
	s.mu.Unlock()
	if off >= size {
		return nil, nil
	}
	n := size - off
	if max > 0 && n > max {
		n = max
	}
	f, err := os.Open(path)
	if err != nil {
		// Compaction can remove the old generation's log between the seq
		// check and the open; the sender restarts from the new base.
		if os.IsNotExist(err) {
			return nil, ErrSeqMismatch
		}
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, off, n), buf); err != nil {
		return nil, fmt.Errorf("store: read segment %q seq %d off %d: %w", name, seq, off, err)
	}
	s.mu.Lock()
	same := s.seq == seq
	s.mu.Unlock()
	if !same {
		return nil, ErrSeqMismatch
	}
	return buf, nil
}

// ExportBase reads a synopsis's current base snapshot verbatim, with the
// generation and metadata a standby needs to adopt it.
func (st *Store) ExportBase(name string) (BaseExport, error) {
	s, err := st.syn(name)
	if err != nil {
		return BaseExport{}, err
	}
	st.manMu.Lock()
	me, ok := st.man.Synopses[name]
	var meta BaseMeta
	if ok {
		meta = BaseMeta{Source: me.Source, Created: me.Created, Budget: me.Budget, Ver: me.Ver}
	}
	st.manMu.Unlock()
	if !ok {
		return BaseExport{}, fmt.Errorf("store: synopsis %q not in manifest", name)
	}
	s.mu.Lock()
	seq := s.seq
	path := filepath.Join(s.dir, baseFile(seq))
	s.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return BaseExport{}, ErrSeqMismatch
		}
		return BaseExport{}, err
	}
	s.mu.Lock()
	same := s.seq == seq
	s.mu.Unlock()
	if !same {
		return BaseExport{}, ErrSeqMismatch
	}
	return BaseExport{Seq: seq, Meta: meta, Data: data}, nil
}

// ImportBase installs a shipped base snapshot as the synopsis's current
// generation on a standby: snapshot bytes written verbatim (validated
// first), a fresh empty delta log under the primary's seq, manifest
// flipped last. It returns the parsed synopsis as a Loaded so the registry
// can host the warm replica. Mirrors SaveBase's sequencing, except the
// generation number is adopted from the primary instead of incremented.
func (st *Store) ImportBase(name string, seq uint64, meta BaseMeta, snapshot []byte) (Loaded, error) {
	syn, err := xseed.ReadSynopsis(bytes.NewReader(snapshot))
	if err != nil {
		return Loaded{}, fmt.Errorf("store: import base for %q: %w", name, err)
	}
	st.mu.Lock()
	s, ok := st.syns[name]
	if !ok {
		kten, bare := SplitKey(name)
		rel := tenantDir(kten) + "/" + dirFor(bare)
		s = &synStore{name: name, rel: rel, dir: filepath.Join(st.dir, "synopses", filepath.FromSlash(rel))}
		st.syns[name] = s
	}
	st.mu.Unlock()

	s.genMu.Lock()
	defer s.genMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	st.flushPendingLocked(s) // settle queued records before the swap
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		st.m.baseErrs.Inc()
		return Loaded{}, err
	}
	start := time.Now()
	path := filepath.Join(s.dir, baseFile(seq))
	if err := writeFileAtomic(path, snapshot); err != nil {
		st.m.baseErrs.Inc()
		return Loaded{}, err
	}
	lf, err := os.OpenFile(filepath.Join(s.dir, deltaFile(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		st.m.baseErrs.Inc()
		return Loaded{}, err
	}
	ten, bare := SplitKey(name)
	me := &ManifestEntry{
		Dir:     s.rel,
		Seq:     seq,
		Source:  meta.Source,
		Created: meta.Created,
		Budget:  meta.Budget,
		Ver:     meta.Ver,
	}
	if ten != DefaultTenant {
		me.Tenant, me.Name = ten, bare
	}
	if err := st.flipManifest(name, me); err != nil {
		lf.Close()
		st.m.baseErrs.Inc()
		return Loaded{}, err
	}
	st.m.baseSaves.Inc()
	st.m.baseBytes.Add(uint64(len(snapshot)))
	st.m.baseNs.Observe(time.Since(start).Nanoseconds())
	oldSeq := s.seq
	if s.log != nil {
		s.log.Close()
	}
	s.log = lf
	s.logSize = 0
	s.deltaCount = 0
	s.baseSize = int64(len(snapshot))
	s.seq = seq
	if oldSeq != seq && oldSeq != 0 {
		os.Remove(filepath.Join(s.dir, baseFile(oldSeq)))
		os.Remove(filepath.Join(s.dir, deltaFile(oldSeq)))
	}
	return Loaded{
		Name:    name,
		Syn:     syn,
		Source:  meta.Source,
		Created: meta.Created,
		Budget:  meta.Budget,
		Ver:     meta.Ver,
	}, nil
}

// AppendSegment appends a shipped run of delta-log records verbatim at
// byte offset off of generation seq, validating record framing and
// checksums before a byte lands in the log. A segment entirely at or
// before the current log end is a duplicate retransmit: acked as applied
// (newSize unchanged) without touching the log. A generation or offset
// divergence is ErrSeqMismatch — the sender re-ships the base.
func (st *Store) AppendSegment(name string, seq uint64, off int64, data []byte) (newSize int64, records int, err error) {
	s, serr := st.syn(name)
	if serr != nil {
		return 0, 0, ErrSeqMismatch
	}
	res, err := scanLog(bytes.NewReader(data), -1, nil)
	if err != nil {
		return 0, 0, err
	}
	if res.Torn || res.Good != int64(len(data)) {
		return 0, 0, fmt.Errorf("store: segment for %q is not whole records (%s)", name, res.TornWhy)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st.flushPendingLocked(s) // offsets compare against the durable log end
	if s.seq != seq {
		return 0, 0, ErrSeqMismatch
	}
	if off+int64(len(data)) <= s.logSize {
		return s.logSize, 0, nil // duplicate retransmit
	}
	if off != s.logSize {
		return 0, 0, ErrSeqMismatch
	}
	if s.log == nil {
		st.m.appendErrs.Inc()
		return 0, 0, fmt.Errorf("store: synopsis %q has no open log", name)
	}
	start := time.Now()
	if _, err := s.log.Write(data); err != nil {
		st.m.appendErrs.Inc()
		return 0, 0, fmt.Errorf("store: append segment for %q: %w", name, err)
	}
	// Segments are already sender-side batches, so a durable standby syncs
	// them inline even in batch mode — no extra window buys anything.
	if st.opts.Fsync != FsyncOff {
		fstart := time.Now()
		if err := s.log.Sync(); err != nil {
			st.m.appendErrs.Inc()
			return 0, 0, err
		}
		st.m.fsyncs.Inc()
		st.m.fsyncNs.Observe(time.Since(fstart).Nanoseconds())
	}
	st.m.appends.Add(uint64(res.Records))
	st.m.appendBytes.Add(uint64(len(data)))
	st.m.appendNs.Observe(time.Since(start).Nanoseconds())
	s.logSize += int64(len(data))
	s.deltaCount += int64(res.Records)
	return s.logSize, res.Records, nil
}

// ReplaySegment applies a validated segment's records onto a warm
// in-memory synopsis — the standby's apply loop, run after AppendSegment
// made the same bytes durable. The caller serializes it with everything
// else mutating syn (the registry's entry lock).
func ReplaySegment(syn *xseed.Synopsis, data []byte) (records int, err error) {
	res, err := scanLog(bytes.NewReader(data), -1, func(rec deltaRecord) error {
		return applyRecord(syn, rec)
	})
	if err != nil {
		return res.Records, err
	}
	if res.Torn || res.Good != int64(len(data)) {
		return res.Records, fmt.Errorf("store: segment is not whole records (%s)", res.TornWhy)
	}
	return res.Records, nil
}
