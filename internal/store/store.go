// Package store is xseedd's durability layer: a manifest-backed directory of
// versioned synopsis snapshots with append-only delta logs, so a
// feedback-heavy daemon persists each mutation in O(delta) bytes instead of
// rewriting full synopses, and reloads its whole registry after a crash.
//
// Layout:
//
//	<dir>/manifest.json                    the persistent registry
//	<dir>/synopses/<sanitized>/
//	    base-<seq>.xsyn                    full snapshot (versioned stream)
//	    delta-<seq>.log                    checksummed mutation log since base
//
// Writes are crash-safe by construction: bases and the manifest are written
// to temp files and renamed; delta records are framed, checksummed, and
// appended in single writes, and recovery tolerates a torn tail. Compaction
// (see compact.go) folds a log into a fresh base under a new sequence number
// and flips the manifest last, so every crash window leaves either the old
// (base, log) pair or the new one fully intact.
package store

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"xseed"
	"xseed/internal/logx"
	"xseed/internal/obs"
)

// FsyncMode selects the delta-log durability discipline.
type FsyncMode int

const (
	// FsyncOff never syncs the delta log. An O_APPEND write survives
	// kill -9 without it (the page cache belongs to the kernel, not the
	// process); only a machine crash loses buffered records.
	FsyncOff FsyncMode = iota

	// FsyncBatch group-commits: appends enqueue into a per-synopsis buffer
	// and a store-wide committer goroutine flushes each buffer with one
	// write + one fsync per batch window (Options.BatchLatency). Callers
	// block until their record's batch is durable, so the ack contract
	// matches FsyncEvery while fsyncs/record drops by the batch factor.
	FsyncBatch

	// FsyncEvery syncs after every append — machine-crash durable, but
	// feedback-heavy traffic pays one fsync per mutation.
	FsyncEvery
)

// ParseFsyncMode maps a -store-fsync flag value to a mode. "true"/"false"
// keep the pre-batch boolean flag spellings working.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "", "off", "false":
		return FsyncOff, nil
	case "batch":
		return FsyncBatch, nil
	case "every", "true":
		return FsyncEvery, nil
	}
	return FsyncOff, fmt.Errorf("store: unknown fsync mode %q (want off, batch, or every)", s)
}

func (m FsyncMode) String() string {
	switch m {
	case FsyncBatch:
		return "batch"
	case FsyncEvery:
		return "every"
	}
	return "off"
}

// Options tunes a store.
type Options struct {
	// CompactRatio triggers background compaction when a synopsis's delta
	// log exceeds ratio × its base snapshot size. <= 0 means the default
	// 0.5; tests set it high to disable ratio-driven compaction.
	CompactRatio float64

	// CompactMinBytes is the delta-log size below which ratio compaction is
	// skipped regardless (folding a few hundred bytes of deltas buys
	// nothing). <= 0 means the default 4096.
	CompactMinBytes int64

	// Fsync selects the delta-log durability mode. The zero value is
	// FsyncOff.
	Fsync FsyncMode

	// BatchLatency bounds how long a FsyncBatch record may wait before its
	// batch is flushed. <= 0 means the default 2ms. Ignored in other modes.
	BatchLatency time.Duration

	// Log receives recovery and compaction events. Nil discards them.
	Log *slog.Logger

	// Metrics receives store counters and latency histograms (see
	// metrics.go). Nil means obs.Disabled: every instrument is a no-op.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.CompactRatio <= 0 {
		o.CompactRatio = 0.5
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = 4096
	}
	if o.BatchLatency <= 0 {
		o.BatchLatency = 2 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = logx.Discard()
	}
	if o.Metrics == nil {
		o.Metrics = obs.Disabled
	}
	return o
}

// Store is an open store directory. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	m *metrics

	mu   sync.Mutex // guards syns map membership
	syns map[string]*synStore

	manMu sync.Mutex // guards manifest state + file; acquired after a synStore.mu
	man   *Manifest

	cm *committer // group-commit flusher; non-nil iff opts.Fsync == FsyncBatch
}

// synStore is one synopsis's open persistence state. Its mutex serializes
// appends with each other and with compaction's file swap; the caller-side
// mutation order (the registry's per-entry lock) is preserved because
// appends happen inside that critical section.
type synStore struct {
	name string
	rel  string // manifest-relative dir: "<tenant>/<sanitized>"
	dir  string // absolute

	// genMu serializes generation changes — SaveBase, Remove, CompactNow —
	// with each other for this synopsis (two of them interleaving could both
	// claim sequence seq+1 and clobber each other's files). Appends only
	// need mu. Lock order: genMu, then mu, then Store.manMu.
	genMu sync.Mutex

	mu          sync.Mutex
	seq         uint64
	log         *os.File // delta-<seq>.log, opened O_APPEND
	logSize     int64    // durable bytes: advances when records hit the file
	deltaCount  int64    // records appended or replayed since base
	baseSize    int64
	compacting  bool
	compactions int64

	// Group commit (FsyncBatch): encoded records accumulate in pending and
	// the store's committer writes+fsyncs them as one batch, settling every
	// waiter with the flush outcome. Guarded by mu.
	pending  []byte
	pendingN int
	waiters  []*Pending
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(filepath.Join(dir, "synopses"), 0o755); err != nil {
		return nil, err
	}
	man, err := readManifest(dir)
	if os.IsNotExist(err) {
		man = &Manifest{Version: manifestVersion, Synopses: make(map[string]*ManifestEntry)}
		if err := writeManifest(dir, man); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}
	if man.Version == 1 {
		if err := migrateV1(dir, man, opts.Log); err != nil {
			return nil, err
		}
	}
	st := &Store{dir: dir, opts: opts, man: man, syns: make(map[string]*synStore), m: newMetrics(opts.Metrics)}
	for name, me := range man.Synopses {
		s := &synStore{name: name, rel: me.Dir, dir: filepath.Join(dir, "synopses", filepath.FromSlash(me.Dir)), seq: me.Seq}
		cleanStale(s.dir, me.Seq, opts.Log)
		if err := s.truncateTorn(opts.Log); err != nil {
			return nil, fmt.Errorf("store: recover log for %q: %w", name, err)
		}
		if err := s.openLog(); err != nil {
			return nil, fmt.Errorf("store: open log for %q: %w", name, err)
		}
		if fi, err := os.Stat(filepath.Join(s.dir, baseFile(me.Seq))); err == nil {
			s.baseSize = fi.Size()
		}
		st.syns[name] = s
	}
	if opts.Fsync == FsyncBatch {
		st.cm = newCommitter(st)
	}
	return st, nil
}

// migrateV1 upgrades a pre-tenancy store in place: every synopsis directory
// moves under the default tenant (synopses/<dir> → synopses/default/<dir>)
// with atomic renames, and the version-2 manifest is written last as the
// commit point. Kill -9 at any point leaves either a resumable v1 store
// (renames are idempotent — a directory already at its new home is skipped)
// or a complete v2 store; nothing is copied, so no state is ever duplicated
// and no crash window loses a generation.
func migrateV1(dir string, m *Manifest, lg *slog.Logger) error {
	lg.Info("migrating pre-tenancy store layout to v2", "dir", dir, "synopses", len(m.Synopses))
	tdir := filepath.Join(dir, "synopses", DefaultTenant)
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return err
	}
	for key, me := range m.Synopses {
		rel := me.Dir
		if strings.ContainsRune(rel, '/') {
			continue // already two-level; nothing to move
		}
		oldp := filepath.Join(dir, "synopses", rel)
		newp := filepath.Join(tdir, rel)
		if _, err := os.Stat(oldp); err == nil {
			if err := os.Rename(oldp, newp); err != nil {
				return fmt.Errorf("store: migrate %q: %w", key, err)
			}
		} else if _, err := os.Stat(newp); err != nil {
			// A previous partial migration would have left the directory at
			// exactly one of the two homes; at neither means the store was
			// already broken. Refuse rather than silently dropping data.
			return fmt.Errorf("store: migrate %q: synopsis directory %s missing", key, rel)
		}
		me.Dir = DefaultTenant + "/" + rel
	}
	if err := syncDir(tdir); err != nil {
		return err
	}
	if err := syncDir(filepath.Join(dir, "synopses")); err != nil {
		return err
	}
	m.Version = manifestVersion
	return writeManifest(dir, m)
}

// truncateTorn scans the current delta log and truncates it to its trusted
// prefix. A torn tail must be cut off before the log is reopened O_APPEND:
// records appended after garbage would themselves be unreachable — replay
// stops at the first malformed record — so every later mutation would be
// silently lost at the restart after next. Truncating also means a live
// store's log is never torn, so compaction never has to refuse one.
func (s *synStore) truncateTorn(lg *slog.Logger) error {
	path := filepath.Join(s.dir, deltaFile(s.seq))
	res, err := scanLogFile(path, -1, nil)
	if err != nil {
		return err
	}
	s.deltaCount = int64(res.Records)
	if res.Trailing == 0 {
		return nil
	}
	lg.Warn("truncating torn delta log tail",
		"synopsis", s.name, "why", res.TornWhy,
		"droppedBytes", res.Trailing, "trustedRecords", res.Records)
	return os.Truncate(path, res.Good)
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// cleanStale removes temp files and base/delta files from sequences other
// than the live one — debris from a crash mid-compaction. The manifest flip
// is the commit point, so anything off-sequence is either an abandoned new
// generation (crash before the flip) or a superseded old one (crash after).
func cleanStale(dir string, liveSeq uint64, lg *slog.Logger) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		keep := name == baseFile(liveSeq) || name == deltaFile(liveSeq)
		if keep {
			continue
		}
		lg.Info("removing stale store file", "path", filepath.Join(dir, name))
		os.Remove(filepath.Join(dir, name))
	}
}

// openLog opens (creating if needed) the current delta log for appending and
// records its size. Caller owns s.mu or exclusive access.
func (s *synStore) openLog() error {
	f, err := os.OpenFile(filepath.Join(s.dir, deltaFile(s.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if s.log != nil {
		s.log.Close()
	}
	s.log = f
	s.logSize = fi.Size()
	return nil
}

func (st *Store) syn(name string) (*synStore, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.syns[name]
	if !ok {
		return nil, fmt.Errorf("store: synopsis %q not persisted", name)
	}
	return s, nil
}

// Loaded is one synopsis recovered by LoadAll.
type Loaded struct {
	Name    string
	Syn     *xseed.Synopsis
	Source  string
	Created time.Time
	Budget  int    // last applied SetBudget total (0 = never)
	Ver     uint64 // cache-scope version to resume from
	Replay  int    // delta records replayed on top of the base
	Torn    bool   // the log still ends torn (Open truncates tails, so
	// this only fires if the file changed after open)
}

// LoadAll recovers every synopsis in the manifest: reads its base snapshot,
// replays its delta log (tolerating a torn tail), and returns them in name
// order. A synopsis whose base is unreadable is a hard error — silently
// dropping registered data is worse than refusing to start.
func (st *Store) LoadAll() ([]Loaded, error) {
	st.manMu.Lock()
	names := st.man.names()
	st.manMu.Unlock()
	out := make([]Loaded, 0, len(names))
	for _, name := range names {
		l, err := st.loadOne(name)
		if err != nil {
			return nil, fmt.Errorf("store: load %q: %w", name, err)
		}
		out = append(out, l)
	}
	return out, nil
}

func (st *Store) loadOne(name string) (Loaded, error) {
	st.manMu.Lock()
	me, ok := st.man.Synopses[name]
	if ok {
		cp := *me
		me = &cp
	}
	st.manMu.Unlock()
	if !ok {
		return Loaded{}, fmt.Errorf("not in manifest")
	}
	s, err := st.syn(name)
	if err != nil {
		return Loaded{}, err
	}
	syn, res, budget, err := loadFrom(s.dir, me, -1)
	if err != nil {
		return Loaded{}, err
	}
	s.mu.Lock()
	s.deltaCount = int64(res.Records)
	s.mu.Unlock()
	if res.Torn {
		st.opts.Log.Warn("delta log torn tail",
			"synopsis", name, "why", res.TornWhy,
			"trustedBytes", res.Good, "trustedRecords", res.Records)
	}
	return Loaded{
		Name:    name,
		Syn:     syn,
		Source:  me.Source,
		Created: me.Created,
		Budget:  budget,
		Ver:     me.Ver + uint64(res.Records),
		Replay:  res.Records,
		Torn:    res.Torn,
	}, nil
}

// loadFrom builds a synopsis from a directory's base snapshot plus at most
// limit bytes of its delta log (-1: the whole log). It is the one recovery
// path, shared by startup, compaction, and fsck.
func loadFrom(dir string, me *ManifestEntry, limit int64) (*xseed.Synopsis, replayResult, int, error) {
	f, err := os.Open(filepath.Join(dir, baseFile(me.Seq)))
	if err != nil {
		return nil, replayResult{}, 0, err
	}
	syn, err := xseed.ReadSynopsis(f)
	f.Close()
	if err != nil {
		return nil, replayResult{}, 0, fmt.Errorf("base snapshot: %w", err)
	}
	budget := me.Budget
	var res replayResult
	// Replay batches publication: applying a long log record-by-record
	// would otherwise rebuild the synopsis's estimation snapshot per record
	// (O(records × synopsis) instead of O(delta)); nothing estimates during
	// recovery, so one snapshot at the end is equivalent.
	err = syn.Replay(func() error {
		var scanErr error
		res, scanErr = scanLogFile(filepath.Join(dir, deltaFile(me.Seq)), limit, func(rec deltaRecord) error {
			if rec.Op == opBudget {
				budget = rec.Bytes
			}
			return applyRecord(syn, rec)
		})
		return scanErr
	})
	if err != nil {
		return nil, res, 0, err
	}
	return syn, res, budget, nil
}

// SaveBase persists a full snapshot of the synopsis as a fresh generation:
// new base file, empty delta log, manifest flipped last. It both registers a
// new synopsis and replaces an existing one (snapshot upload, compaction's
// final step reuses the same sequencing). The caller must guarantee syn is
// not concurrently mutated (the registry serializes this on its entry lock).
func (st *Store) SaveBase(name string, syn *xseed.Synopsis, source string, created time.Time, budget int, ver uint64) error {
	st.mu.Lock()
	s, ok := st.syns[name]
	if !ok {
		kten, bare := SplitKey(name)
		rel := tenantDir(kten) + "/" + dirFor(bare)
		s = &synStore{name: name, rel: rel, dir: filepath.Join(st.dir, "synopses", filepath.FromSlash(rel))}
		st.syns[name] = s
	}
	st.mu.Unlock()

	s.genMu.Lock()
	defer s.genMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Settle any queued group-commit records before the generation swap:
	// their waiters were promised this generation's log, which is about to
	// be superseded (the new base snapshot already reflects them in memory).
	st.flushPendingLocked(s)
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		st.m.baseErrs.Inc()
		return err
	}
	start := time.Now()
	newSeq := s.seq + 1
	n, err := writeBase(s.dir, newSeq, syn)
	if err != nil {
		st.m.baseErrs.Inc()
		return err
	}
	// Fresh empty delta log for the new generation.
	lf, err := os.OpenFile(filepath.Join(s.dir, deltaFile(newSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		st.m.baseErrs.Inc()
		return err
	}
	ten, bare := SplitKey(name)
	me := &ManifestEntry{
		Dir:     s.rel,
		Seq:     newSeq,
		Source:  source,
		Created: created,
		Budget:  budget,
		Ver:     ver,
	}
	if ten != DefaultTenant {
		me.Tenant, me.Name = ten, bare
	}
	if err := st.flipManifest(name, me); err != nil {
		lf.Close()
		st.m.baseErrs.Inc()
		return err
	}
	st.m.baseSaves.Inc()
	st.m.baseBytes.Add(uint64(n))
	st.m.baseNs.Observe(time.Since(start).Nanoseconds())
	oldSeq := s.seq
	if s.log != nil {
		s.log.Close()
	}
	s.log = lf
	s.logSize = 0
	s.deltaCount = 0
	s.baseSize = n
	s.seq = newSeq
	if oldSeq != newSeq {
		os.Remove(filepath.Join(s.dir, baseFile(oldSeq)))
		os.Remove(filepath.Join(s.dir, deltaFile(oldSeq)))
	}
	return nil
}

func writeBase(dir string, seq uint64, syn *xseed.Synopsis) (int64, error) {
	path := filepath.Join(dir, baseFile(seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	n, err := syn.WriteTo(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return n, syncDir(dir)
}

// flipManifest atomically updates (or, with me == nil, removes) one entry.
func (st *Store) flipManifest(name string, me *ManifestEntry) error {
	st.manMu.Lock()
	defer st.manMu.Unlock()
	if me == nil {
		delete(st.man.Synopses, name)
	} else {
		st.man.Synopses[name] = me
	}
	return writeManifest(st.dir, st.man)
}

// AppendFeedback persists one feedback-driven HET mutation in O(delta)
// bytes. Call it inside the same critical section that applied the mutation
// in memory, so the log order matches the apply order.
func (st *Store) AppendFeedback(name string, d xseed.HETDelta) error {
	p, err := st.AppendFeedbackEnq(name, d)
	if err != nil {
		return err
	}
	return p.Wait()
}

// AppendFeedbackEnq is AppendFeedback split for group commit: it enqueues
// the record (inside the caller's apply-order critical section, so log order
// matches apply order) and returns a Pending handle the caller waits on
// AFTER leaving that critical section — blocking a hot synopsis's entry lock
// for a whole batch window would cap it at 1/BatchLatency events/sec. In
// non-batch modes the append is already durable on return and the handle's
// Wait is free.
func (st *Store) AppendFeedbackEnq(name string, d xseed.HETDelta) (*Pending, error) {
	return st.appendEnq(name, deltaRecord{Op: opFeedback, HET: &d})
}

// AppendSubtree persists an incremental subtree add or remove.
func (st *Store) AppendSubtree(name string, add bool, contextPath []string, xml string) error {
	op := opRemove
	if add {
		op = opAdd
	}
	return st.append(name, deltaRecord{Op: op, Context: contextPath, XML: xml})
}

// AppendBudget persists a SetBudget call (registry rebalancing).
func (st *Store) AppendBudget(name string, totalBytes int) error {
	return st.append(name, deltaRecord{Op: opBudget, Bytes: totalBytes})
}

func (st *Store) append(name string, rec deltaRecord) error {
	p, err := st.appendEnq(name, rec)
	if err != nil {
		return err
	}
	return p.Wait()
}

// appendEnq persists one record. In FsyncBatch mode it enqueues the encoded
// record for the committer and returns a live Pending; otherwise it writes
// (and in FsyncEvery syncs) immediately and returns an already-settled
// handle.
func (st *Store) appendEnq(name string, rec deltaRecord) (*Pending, error) {
	s, err := st.syn(name)
	if err != nil {
		return nil, err
	}
	buf, err := encodeRecord(rec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		st.m.appendErrs.Inc()
		return nil, fmt.Errorf("store: synopsis %q has no open log", name)
	}
	if st.cm != nil {
		p := &Pending{done: make(chan struct{})}
		s.pending = append(s.pending, buf...)
		s.pendingN++
		s.waiters = append(s.waiters, p)
		st.cm.markDirty(s)
		return p, nil
	}
	start := time.Now()
	if _, err := s.log.Write(buf); err != nil {
		st.m.appendErrs.Inc()
		return nil, fmt.Errorf("store: append %s delta for %q: %w", rec.Op, name, err)
	}
	if st.opts.Fsync == FsyncEvery {
		fstart := time.Now()
		if err := s.log.Sync(); err != nil {
			st.m.appendErrs.Inc()
			return nil, err
		}
		st.m.fsyncs.Inc()
		st.m.fsyncNs.Observe(time.Since(fstart).Nanoseconds())
	}
	st.m.appends.Inc()
	st.m.appendBytes.Add(uint64(len(buf)))
	st.m.appendNs.Observe(time.Since(start).Nanoseconds())
	s.logSize += int64(len(buf))
	s.deltaCount++
	return settled, nil
}

// Remove forgets a synopsis: manifest first (the commit point), then its
// directory.
func (st *Store) Remove(name string) error {
	st.mu.Lock()
	s, ok := st.syns[name]
	if ok {
		delete(st.syns, name)
	}
	st.mu.Unlock()
	if !ok {
		return nil
	}
	s.genMu.Lock()
	defer s.genMu.Unlock()
	s.mu.Lock()
	st.flushPendingLocked(s)
	if s.log != nil {
		s.log.Close()
		s.log = nil
	}
	s.mu.Unlock()
	if err := st.flipManifest(name, nil); err != nil {
		return err
	}
	if err := os.RemoveAll(s.dir); err != nil {
		return err
	}
	// Drop the tenant directory too once its last synopsis is gone (fails
	// harmlessly while non-empty).
	os.Remove(filepath.Dir(s.dir))
	return nil
}

// Close flushes and closes every delta log. The store is unusable after.
func (st *Store) Close() error {
	if st.cm != nil {
		st.cm.stop() // final flush of everything enqueued so far
	}
	st.mu.Lock()
	syns := make([]*synStore, 0, len(st.syns))
	for _, s := range st.syns {
		syns = append(syns, s)
	}
	st.mu.Unlock()
	var first error
	for _, s := range syns {
		s.mu.Lock()
		st.flushPendingLocked(s) // stragglers enqueued after the committer stopped
		if s.log != nil {
			if err := s.log.Sync(); err != nil && first == nil {
				first = err
			}
			if err := s.log.Close(); err != nil && first == nil {
				first = err
			}
			s.log = nil
		}
		s.mu.Unlock()
	}
	return first
}

// SynopsisStats is the persistence state of one synopsis.
type SynopsisStats struct {
	Name         string `json:"name"`
	Seq          uint64 `json:"seq"`
	BaseBytes    int64  `json:"baseBytes"`
	DeltaBytes   int64  `json:"deltaBytes"`
	DeltaRecords int64  `json:"deltaRecords"`
	Compactions  int64  `json:"compactions"`
}

// Stats is the store-wide stats payload served under /stats.
type Stats struct {
	Dir      string          `json:"dir"`
	Synopses []SynopsisStats `json:"synopses"`
}

// Stats snapshots every synopsis's persistence state, sorted by name.
func (st *Store) Stats() Stats {
	st.manMu.Lock()
	names := st.man.names()
	st.manMu.Unlock()
	out := Stats{Dir: st.dir}
	for _, name := range names {
		s, err := st.syn(name)
		if err != nil {
			continue
		}
		s.mu.Lock()
		out.Synopses = append(out.Synopses, SynopsisStats{
			Name:         name,
			Seq:          s.seq,
			BaseBytes:    s.baseSize,
			DeltaBytes:   s.logSize,
			DeltaRecords: s.deltaCount,
			Compactions:  s.compactions,
		})
		s.mu.Unlock()
	}
	return out
}
