package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xseed"
	"xseed/internal/fixtures"
)

func buildFig2(t testing.TB) *xseed.Synopsis {
	t.Helper()
	d, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	return syn
}

func openStore(t testing.TB, dir string) *Store {
	t.Helper()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// feedback applies a feedback to the synopsis and persists the delta, the
// way the registry does.
func feedback(t testing.TB, st *Store, name string, syn *xseed.Synopsis, query string, actual float64) {
	t.Helper()
	q, err := xseed.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	_, delta, applied := syn.FeedbackQueryDelta(q, actual)
	if !applied {
		t.Fatalf("feedback %s not applied", query)
	}
	if err := st.AppendFeedback(name, delta); err != nil {
		t.Fatal(err)
	}
}

func estimates(t testing.TB, syn *xseed.Synopsis, queries ...string) []float64 {
	t.Helper()
	out := make([]float64, len(queries))
	for i, q := range queries {
		v, err := syn.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

var probeQueries = []string{"/a/c/s/s/t", "/a/c/s", "//s//p", "//s//s//p", "/a/c/s[t]/p"}

func TestSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	syn := buildFig2(t)
	created := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	if err := st.SaveBase("fig2", syn, "test", created, 0, 3); err != nil {
		t.Fatal(err)
	}
	feedback(t, st, "fig2", syn, "/a/c/s/s/t", 2)
	feedback(t, st, "fig2", syn, "/a/c/s[t]/p", 7)
	if err := st.AppendSubtree("fig2", true, []string{"a"}, "<u/><u/>"); err != nil {
		t.Fatal(err)
	}
	if err := syn.AddSubtree([]string{"a"}, "<u/><u/>"); err != nil {
		t.Fatal(err)
	}
	want := estimates(t, syn, probeQueries...)
	wantU, _ := syn.Estimate("/a/u")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("loaded %d synopses, want 1", len(loaded))
	}
	l := loaded[0]
	if l.Name != "fig2" || l.Source != "test" || !l.Created.Equal(created) {
		t.Errorf("meta = %+v", l)
	}
	if l.Replay != 3 || l.Torn {
		t.Errorf("replay = %d (torn %v), want 3 clean records", l.Replay, l.Torn)
	}
	if l.Ver != 3+3 {
		t.Errorf("ver = %d, want base 3 + 3 deltas", l.Ver)
	}
	got := estimates(t, l.Syn, probeQueries...)
	for i, q := range probeQueries {
		if got[i] != want[i] {
			t.Errorf("%s: recovered %g, want %g", q, got[i], want[i])
		}
	}
	if gotU, _ := l.Syn.Estimate("/a/u"); gotU != wantU {
		t.Errorf("/a/u after subtree replay = %g, want %g", gotU, wantU)
	}
}

// TestFeedbackPersistsODelta is the acceptance criterion: persisting one
// feedback event writes O(delta) bytes — a fixed-size log record — not a
// full snapshot.
func TestFeedbackPersistsODelta(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	syn := buildFig2(t)
	if err := st.SaveBase("fig2", syn, "test", time.Now(), 0, 0); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats().Synopses[0]
	baseBytes := stats.BaseBytes
	if baseBytes < 400 {
		t.Fatalf("implausibly small base: %d bytes", baseBytes)
	}
	before := stats.DeltaBytes
	feedback(t, st, "fig2", syn, "/a/c/s/s/t", 2)
	after := st.Stats().Synopses[0].DeltaBytes
	wrote := after - before
	if wrote <= 0 {
		t.Fatal("feedback wrote nothing")
	}
	if wrote > 200 {
		t.Errorf("one feedback wrote %d bytes — not O(delta)", wrote)
	}
	if wrote*4 > baseBytes {
		t.Errorf("one feedback wrote %d bytes vs %d-byte base — snapshot-sized, not delta-sized", wrote, baseBytes)
	}
	// The base file itself must not have been rewritten.
	if got := st.Stats().Synopses[0].BaseBytes; got != baseBytes {
		t.Errorf("base rewritten by feedback: %d -> %d bytes", baseBytes, got)
	}
}

// TestTornTailTolerated simulates the kill -9 signature: the log ends
// mid-record. Recovery must trust the intact prefix and ignore the tail.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	syn := buildFig2(t)
	if err := st.SaveBase("fig2", syn, "test", time.Now(), 0, 0); err != nil {
		t.Fatal(err)
	}
	feedback(t, st, "fig2", syn, "/a/c/s/s/t", 2)
	want := estimates(t, syn, probeQueries...)
	st.Close()

	// Tear the tail: append half a record's worth of garbage.
	logPath := findOne(t, dir, "delta-*.log")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2 := openStore(t, dir)
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	l := loaded[0]
	if l.Replay != 1 {
		t.Fatalf("replay=%d, want 1 trusted record", l.Replay)
	}
	got := estimates(t, l.Syn, probeQueries...)
	for i, q := range probeQueries {
		if got[i] != want[i] {
			t.Errorf("%s: recovered %g, want %g", q, got[i], want[i])
		}
	}
	// Open must have truncated the garbage so new appends are reachable —
	// a record appended after an un-truncated torn tail would be silently
	// dropped by the restart after next.
	if fi, err := os.Stat(logPath); err != nil {
		t.Fatal(err)
	} else if trusted := tornTrustedSize(t, logPath); fi.Size() != trusted {
		t.Errorf("log not truncated to trusted prefix: size %d, trusted %d", fi.Size(), trusted)
	}
	feedback(t, st2, "fig2", l.Syn, "/a/c/s", 5)
	want2 := estimates(t, l.Syn, probeQueries...)
	st2.Close()

	st3 := openStore(t, dir)
	defer st3.Close()
	loaded, err = st3.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if loaded[0].Replay != 2 {
		t.Fatalf("second restart replay=%d, want 2 (post-torn-tail append lost)", loaded[0].Replay)
	}
	got = estimates(t, loaded[0].Syn, probeQueries...)
	for i, q := range probeQueries {
		if got[i] != want2[i] {
			t.Errorf("%s: second restart %g, want %g", q, got[i], want2[i])
		}
	}
}

// tornTrustedSize returns the byte size of the log's valid prefix.
func tornTrustedSize(t testing.TB, path string) int64 {
	t.Helper()
	res, err := scanLogFile(path, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Good
}

// TestChecksumStopsReplay flips a payload byte; the CRC must catch it and
// replay must stop at the corrupt record rather than apply garbage.
func TestChecksumStopsReplay(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	syn := buildFig2(t)
	if err := st.SaveBase("fig2", syn, "test", time.Now(), 0, 0); err != nil {
		t.Fatal(err)
	}
	feedback(t, st, "fig2", syn, "/a/c/s/s/t", 2)
	feedback(t, st, "fig2", syn, "/a/c/s[t]/p", 7)
	st.Close()

	logPath := findOne(t, dir, "delta-*.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	l := loaded[0]
	if l.Replay >= 2 {
		t.Errorf("replayed %d records past corruption", l.Replay)
	}
	// The corrupt suffix was cut at open: the surviving log must be exactly
	// the records that replayed.
	if got := st2.Stats().Synopses[0].DeltaRecords; got != int64(l.Replay) {
		t.Errorf("surviving records = %d, replayed %d", got, l.Replay)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	syn := buildFig2(t)
	if err := st.SaveBase("fig2", syn, "test", time.Now(), 0, 5); err != nil {
		t.Fatal(err)
	}
	feedback(t, st, "fig2", syn, "/a/c/s/s/t", 2)
	feedback(t, st, "fig2", syn, "/a/c/s[t]/p", 7)
	if err := st.AppendBudget("fig2", 100000); err != nil {
		t.Fatal(err)
	}
	syn.SetBudget(100000)
	want := estimates(t, syn, probeQueries...)

	if folded, err := st.CompactNow("fig2"); err != nil || !folded {
		t.Fatalf("compact: folded=%v err=%v", folded, err)
	}
	stats := st.Stats().Synopses[0]
	if stats.Seq != 2 || stats.DeltaBytes != 0 || stats.DeltaRecords != 0 || stats.Compactions != 1 {
		t.Errorf("post-compact stats = %+v", stats)
	}
	// Old generation files are gone; only seq-2 files remain.
	sdir := filepath.Dir(findOne(t, dir, "base-*.xsyn"))
	ents, _ := os.ReadDir(sdir)
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 2 || names[0] != "base-2.xsyn" || names[1] != "delta-2.log" {
		t.Errorf("post-compact files = %v", names)
	}

	// Deltas appended after compaction land in the new log and replay.
	feedback(t, st, "fig2", syn, "/a/c/s", 5)
	want2 := estimates(t, syn, probeQueries...)
	st.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	l := loaded[0]
	if l.Replay != 1 {
		t.Errorf("replay after compaction = %d, want 1", l.Replay)
	}
	if l.Budget != 100000 {
		t.Errorf("budget folded into base = %d, want 100000", l.Budget)
	}
	// Ver must account for the folded deltas: base 5 + 3 folded + 1 new.
	if l.Ver != 9 {
		t.Errorf("ver = %d, want 9", l.Ver)
	}
	got := estimates(t, l.Syn, probeQueries...)
	for i, q := range probeQueries {
		if got[i] != want2[i] {
			t.Errorf("%s: recovered %g, want %g (pre-extra-feedback %g)", q, got[i], want2[i], want[i])
		}
	}
}

// TestCompactorRatioTrigger drives maybeCompact directly (the goroutine is
// just a ticker around it).
func TestCompactorRatioTrigger(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{CompactRatio: 0.5, CompactMinBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	syn := buildFig2(t)
	if err := st.SaveBase("fig2", syn, "test", time.Now(), 0, 0); err != nil {
		t.Fatal(err)
	}
	baseBytes := st.Stats().Synopses[0].BaseBytes
	for i := 0; float64(st.Stats().Synopses[0].DeltaBytes) <= 0.5*float64(baseBytes); i++ {
		feedback(t, st, "fig2", syn, "/a/c/s/s/t", float64(2+i))
	}
	st.maybeCompact()
	stats := st.Stats().Synopses[0]
	if stats.Compactions != 1 || stats.DeltaBytes != 0 {
		t.Errorf("ratio compaction did not run: %+v", stats)
	}
	// A single record is far under half the base size: nothing happens.
	feedback(t, st, "fig2", syn, "/a/c/s/s/t", 2)
	st.maybeCompact()
	if got := st.Stats().Synopses[0].Compactions; got != 1 {
		t.Errorf("compacted below ratio: %d compactions", got)
	}
}

func TestRemove(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	syn := buildFig2(t)
	if err := st.SaveBase("fig2", syn, "test", time.Now(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("fig2"); err != nil {
		t.Fatal(err)
	}
	if ents, _ := os.ReadDir(filepath.Join(dir, "synopses")); len(ents) != 0 {
		t.Errorf("synopsis dir not removed: %v", ents)
	}
	if loaded, err := st.LoadAll(); err != nil || len(loaded) != 0 {
		t.Errorf("LoadAll after remove: %v, %v", loaded, err)
	}
	if err := st.AppendFeedback("fig2", xseed.HETDelta{}); err == nil {
		t.Error("append to removed synopsis succeeded")
	}
}

// TestStaleGenerationCleanup simulates a crash mid-compaction: files from a
// never-committed generation must be removed at open, and recovery must use
// the manifest's generation.
func TestStaleGenerationCleanup(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	syn := buildFig2(t)
	if err := st.SaveBase("fig2", syn, "test", time.Now(), 0, 0); err != nil {
		t.Fatal(err)
	}
	feedback(t, st, "fig2", syn, "/a/c/s/s/t", 2)
	want := estimates(t, syn, probeQueries...)
	st.Close()

	sdir := filepath.Dir(findOne(t, dir, "base-*.xsyn"))
	// Debris: an abandoned next-generation base and a temp file.
	if err := os.WriteFile(filepath.Join(sdir, "base-2.xsyn"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sdir, "base-2.xsyn.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	got := estimates(t, loaded[0].Syn, probeQueries...)
	for i := range probeQueries {
		if got[i] != want[i] {
			t.Errorf("%s: recovered %g, want %g", probeQueries[i], got[i], want[i])
		}
	}
	for _, stale := range []string{"base-2.xsyn", "base-2.xsyn.tmp"} {
		if _, err := os.Stat(filepath.Join(sdir, stale)); !os.IsNotExist(err) {
			t.Errorf("stale %s not cleaned", stale)
		}
	}
}

func TestFsck(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	syn := buildFig2(t)
	if err := st.SaveBase("fig2", syn, "test", time.Now(), 0, 0); err != nil {
		t.Fatal(err)
	}
	feedback(t, st, "fig2", syn, "/a/c/s/s/t", 2)
	st.Close()

	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || len(rep.Synopses) != 1 || !rep.Synopses[0].BaseOK || !rep.Synopses[0].ReplayOK {
		t.Fatalf("clean store fails fsck: %+v", rep)
	}
	if rep.Synopses[0].DeltaRecords != 1 {
		t.Errorf("fsck counted %d records, want 1", rep.Synopses[0].DeltaRecords)
	}
	var buf bytes.Buffer
	rep.WriteReport(&buf)
	if !strings.Contains(buf.String(), "OK") || !strings.Contains(buf.String(), "fig2") {
		t.Errorf("report = %q", buf.String())
	}

	// A torn tail is reported but tolerated.
	logPath := findOne(t, dir, "delta-*.log")
	f, _ := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{1, 2, 3})
	f.Close()
	rep, err = Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || !rep.Synopses[0].TornTail {
		t.Errorf("torn tail: ok=%v torn=%v", rep.OK, rep.Synopses[0].TornTail)
	}

	// A truncated base is a hard failure.
	basePath := findOne(t, dir, "base-*.xsyn")
	data, _ := os.ReadFile(basePath)
	if err := os.WriteFile(basePath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Synopses[0].BaseOK {
		t.Errorf("truncated base passes fsck: %+v", rep.Synopses[0])
	}

	// A missing manifest is a hard error.
	if _, err := Fsck(t.TempDir()); err == nil {
		t.Error("fsck of empty dir succeeded")
	}
}

func TestDirForSanitization(t *testing.T) {
	a, b := dirFor("weird/../name"), dirFor("weird_.._name")
	if strings.ContainsAny(a, "/\\") {
		t.Errorf("unsafe dir %q", a)
	}
	if a == b {
		t.Errorf("collision: %q == %q", a, b)
	}
	if dirFor("x") != dirFor("x") {
		t.Error("dirFor not deterministic")
	}
}

// findOne globs for exactly one file under dir, recursively.
func findOne(t testing.TB, dir, pattern string) string {
	t.Helper()
	var hits []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			if ok, _ := filepath.Match(pattern, filepath.Base(path)); ok {
				hits = append(hits, path)
			}
		}
		return nil
	})
	if len(hits) != 1 {
		t.Fatalf("glob %s under %s: %v", pattern, dir, hits)
	}
	return hits[0]
}
