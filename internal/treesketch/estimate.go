package treesketch

import (
	"sort"

	"xseed/internal/xpath"
)

// EstimateOptions tune query estimation over the summary graph.
type EstimateOptions struct {
	// Epsilon stops descendant-axis expansion when a contribution decays
	// below it. Zero means 0.5.
	Epsilon float64

	// MaxDepth caps descendant-axis expansion depth. The summary graph is
	// cyclic on recursive documents (label-split collapses recursion
	// levels), so expansion must be bounded; the resulting error on
	// recursive data is the behaviour the XSEED paper reports. Zero means
	// 24.
	MaxDepth int

	// MaxExpansions caps total work per descendant expansion (cyclic
	// summaries can otherwise enumerate exponentially many graph paths).
	// Zero means 100,000.
	MaxExpansions int
}

func (o EstimateOptions) epsilon() float64 {
	if o.Epsilon <= 0 {
		return 0.5
	}
	return o.Epsilon
}

func (o EstimateOptions) maxDepth() int {
	if o.MaxDepth <= 0 {
		return 24
	}
	return o.MaxDepth
}

func (o EstimateOptions) maxExpansions() int {
	if o.MaxExpansions <= 0 {
		return 100000
	}
	return o.MaxExpansions
}

// Estimate returns the estimated cardinality of the absolute path q using
// default options.
func (s *Synopsis) Estimate(q *xpath.Path) float64 {
	return s.EstimateWith(q, EstimateOptions{})
}

// EstimateString parses and estimates in one call.
func (s *Synopsis) EstimateString(query string) (float64, error) {
	q, err := xpath.Parse(query)
	if err != nil {
		return 0, err
	}
	return s.Estimate(q), nil
}

// EstimateWith returns the estimated cardinality of q under the given
// options. Per-cluster element counts flow along summary edges: a child
// step multiplies by the average child count; a predicate multiplies by the
// estimated fraction of elements with a qualifying child (min(1, avg) under
// TreeSketch's uniformity assumption); a descendant step expands the
// (possibly cyclic) graph with decay and depth bounds.
func (s *Synopsis) EstimateWith(q *xpath.Path, opt EstimateOptions) float64 {
	if len(q.Steps) == 0 || len(s.labels) == 0 {
		return 0
	}
	// ctx maps cluster -> estimated element count reached.
	ctx := map[int32]float64{}
	// Virtual root: exactly one "document node" whose only child is the
	// root cluster with avg 1.
	first := &q.Steps[0]
	if first.Axis == xpath.Child {
		if s.stepMatches(first, s.root) {
			w := s.predFraction(s.root, first.Preds, opt)
			if w > 0 {
				ctx[s.root] = float64(s.counts[s.root]) * w
			}
		}
	} else {
		// Descendant from the virtual root reaches the root cluster and
		// everything below it.
		s.expandDesc(ctx, s.root, float64(s.counts[s.root]), first, opt, true)
	}
	for i := 1; i < len(q.Steps); i++ {
		if len(ctx) == 0 {
			return 0
		}
		st := &q.Steps[i]
		next := map[int32]float64{}
		for _, cl := range sortedKeys(ctx) {
			n := ctx[cl]
			if st.Axis == xpath.Child {
				for _, e := range s.out[cl] {
					if !s.stepMatches(st, e.To) {
						continue
					}
					w := s.predFraction(e.To, st.Preds, opt)
					if w > 0 {
						next[e.To] += n * e.Avg * w
					}
				}
			} else {
				s.expandDesc(next, cl, n, st, opt, false)
			}
		}
		ctx = next
	}
	var est float64
	for _, v := range ctx {
		est += v
	}
	return est
}

// expandDesc accumulates descendant-axis reach from cluster cl carrying n
// estimated elements. includeSelf handles the virtual-root case where the
// start cluster itself is a candidate.
func (s *Synopsis) expandDesc(acc map[int32]float64, cl int32, n float64, st *xpath.Step, opt EstimateOptions, includeSelf bool) {
	eps := opt.epsilon()
	type item struct {
		cl    int32
		val   float64
		depth int
	}
	queue := []item{{cl, n, 0}}
	if includeSelf && s.stepMatches(st, cl) {
		w := s.predFraction(cl, st.Preds, opt)
		if w > 0 {
			acc[cl] += n * w
		}
	}
	maxDepth := opt.maxDepth()
	budget := opt.maxExpansions()
	for len(queue) > 0 && budget > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.depth >= maxDepth {
			continue
		}
		for _, e := range s.out[it.cl] {
			budget--
			v := it.val * e.Avg
			if s.stepMatches(st, e.To) {
				w := s.predFraction(e.To, st.Preds, opt)
				if w > 0 {
					acc[e.To] += v * w
				}
			}
			if v >= eps {
				queue = append(queue, item{e.To, v, it.depth + 1})
			}
		}
	}
}

// predFraction estimates the fraction of cluster cl's elements satisfying
// every predicate (independence across predicates).
func (s *Synopsis) predFraction(cl int32, preds []*xpath.Path, opt EstimateOptions) float64 {
	w := 1.0
	for _, p := range preds {
		pw := s.predPathFraction(cl, p.Steps, opt, 0)
		if pw <= 0 {
			return 0
		}
		w *= pw
	}
	return w
}

// predPathFraction estimates the fraction of cluster cl's elements with a
// match of the relative steps: min(1, expected number of matches) under the
// uniformity assumption.
func (s *Synopsis) predPathFraction(cl int32, steps []xpath.Step, opt EstimateOptions, depth int) float64 {
	if len(steps) == 0 {
		return 1
	}
	if depth > opt.maxDepth() {
		return 0
	}
	st := &steps[0]
	var sum float64
	if st.Axis == xpath.Child {
		for _, e := range s.out[cl] {
			if !s.stepMatches(st, e.To) {
				continue
			}
			frac := s.ownPreds(e.To, st, opt, depth) * s.predPathFraction(e.To, steps[1:], opt, depth+1)
			sum += e.Avg * frac
		}
		return clamp01(sum)
	}
	// Descendant: expected matches anywhere below, decayed expansion.
	eps := opt.epsilon()
	type item struct {
		cl    int32
		val   float64
		depth int
	}
	queue := []item{{cl, 1, depth}}
	budget := opt.maxExpansions()
	for len(queue) > 0 && budget > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.depth > opt.maxDepth() {
			continue
		}
		for _, e := range s.out[it.cl] {
			budget--
			v := it.val * e.Avg
			if s.stepMatches(st, e.To) {
				frac := s.ownPreds(e.To, st, opt, it.depth) * s.predPathFraction(e.To, steps[1:], opt, it.depth+1)
				sum += v * frac
			}
			if v >= eps {
				queue = append(queue, item{e.To, v, it.depth + 1})
			}
		}
	}
	return clamp01(sum)
}

func (s *Synopsis) ownPreds(cl int32, st *xpath.Step, opt EstimateOptions, depth int) float64 {
	w := 1.0
	for _, p := range st.Preds {
		pw := s.predPathFraction(cl, p.Steps, opt, depth+1)
		if pw <= 0 {
			return 0
		}
		w *= pw
	}
	return w
}

func (s *Synopsis) stepMatches(st *xpath.Step, cl int32) bool {
	if st.Wildcard {
		return true
	}
	id, ok := s.dict.Lookup(st.Label)
	return ok && s.labels[cl] == id
}

func sortedKeys(m map[int32]float64) []int32 {
	ks := make([]int32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func clamp01(f float64) float64 {
	if f > 1 {
		return 1
	}
	if f < 0 {
		return 0
	}
	return f
}

// ClusterInfo returns (label name, element count) for debugging and tests.
func (s *Synopsis) ClusterInfo(cl int32) (string, int64) {
	return s.dict.Name(s.labels[cl]), s.counts[cl]
}
