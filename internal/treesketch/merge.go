package treesketch

import (
	"math/rand"
	"sort"

	"xseed/internal/xmldoc"
)

// mergeGraph is the mutable cluster graph used during greedy compression.
// Out-edges store child *totals* (not averages) so merging is additive.
type mergeGraph struct {
	labels  []xmldoc.LabelID
	counts  []int64
	out     []map[int32]int64
	in      []map[int32]bool
	alive   []bool
	nAlive  int
	nEdges  int
	byLabel map[xmldoc.LabelID][]int32
}

func newMergeGraph(doc *xmldoc.Document, cluster []int32, numClusters int) *mergeGraph {
	g := &mergeGraph{
		labels:  make([]xmldoc.LabelID, numClusters),
		counts:  make([]int64, numClusters),
		out:     make([]map[int32]int64, numClusters),
		in:      make([]map[int32]bool, numClusters),
		alive:   make([]bool, numClusters),
		nAlive:  numClusters,
		byLabel: map[xmldoc.LabelID][]int32{},
	}
	for i := range g.out {
		g.out[i] = map[int32]int64{}
		g.in[i] = map[int32]bool{}
		g.alive[i] = true
	}
	n := doc.NumNodes()
	for i := 0; i < n; i++ {
		c := cluster[i]
		g.labels[c] = doc.Label(xmldoc.NodeID(i))
		g.counts[c]++
		node := xmldoc.NodeID(i)
		for ch := doc.FirstChild(node); ch >= 0; ch = doc.NextSibling(node, ch) {
			cc := cluster[ch]
			if _, ok := g.out[c][cc]; !ok {
				g.nEdges++
			}
			g.out[c][cc]++
			g.in[cc][c] = true
		}
	}
	for c := int32(0); c < int32(numClusters); c++ {
		g.byLabel[g.labels[c]] = append(g.byLabel[g.labels[c]], c)
	}
	return g
}

func (g *mergeGraph) sizeBytes() int { return 8*g.nAlive + 12*g.nEdges }

// mergeStep merges one pair of same-label clusters, chosen as the lowest
// squared-error pair among `cands` sampled candidates from the label with
// the most clusters. Returns false when no label has two clusters left.
func (g *mergeGraph) mergeStep(rng *rand.Rand, cands int) bool {
	// Find the label bucket with the most alive clusters (compacting dead
	// entries as we go).
	var bestLabel xmldoc.LabelID
	bestLen := 0
	labels := make([]xmldoc.LabelID, 0, len(g.byLabel))
	for l := range g.byLabel {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	for _, l := range labels {
		bucket := g.byLabel[l][:0]
		for _, c := range g.byLabel[l] {
			if g.alive[c] {
				bucket = append(bucket, c)
			}
		}
		g.byLabel[l] = bucket
		if len(bucket) > bestLen {
			bestLen = len(bucket)
			bestLabel = l
		}
	}
	if bestLen < 2 {
		return false
	}
	bucket := g.byLabel[bestLabel]

	bestA, bestB := int32(-1), int32(-1)
	bestErr := 0.0
	tried := 0
	for tried < cands {
		var a, b int32
		if tried < len(bucket)-1 && len(bucket) <= cands {
			// Small buckets: walk adjacent pairs deterministically.
			a, b = bucket[tried], bucket[tried+1]
		} else {
			a = bucket[rng.Intn(len(bucket))]
			b = bucket[rng.Intn(len(bucket))]
			if a == b {
				tried++
				continue
			}
		}
		e := g.mergeError(a, b)
		if bestA < 0 || e < bestErr {
			bestA, bestB, bestErr = a, b, e
		}
		tried++
	}
	if bestA < 0 {
		// Sampling collided every time; fall back to the first two.
		bestA, bestB = bucket[0], bucket[1]
	}
	g.merge(bestA, bestB)
	return true
}

// mergeError scores a candidate merge: the count-weighted squared
// difference of the clusters' average child vectors (the squared-error
// objective TreeSketch's clustering minimizes).
func (g *mergeGraph) mergeError(a, b int32) float64 {
	ca, cb := float64(g.counts[a]), float64(g.counts[b])
	var err float64
	for to, tot := range g.out[a] {
		avgA := float64(tot) / ca
		avgB := float64(g.out[b][to]) / cb
		d := avgA - avgB
		err += d * d
	}
	for to, tot := range g.out[b] {
		if _, ok := g.out[a][to]; ok {
			continue
		}
		avgB := float64(tot) / cb
		err += avgB * avgB
	}
	return err * (ca + cb)
}

// merge folds cluster b into cluster a (same label), maintaining the edge
// count invariant: nEdges = |{(src,dst) alive with out[src][dst] present}|.
func (g *mergeGraph) merge(a, b int32) {
	g.counts[a] += g.counts[b]

	// Fold b's out-edges into a: b→x becomes a→x, b→b becomes a→a.
	for to, tot := range g.out[b] {
		g.nEdges-- // the b→to edge disappears
		effTo := to
		if effTo == b {
			effTo = a
		}
		if _, ok := g.out[a][effTo]; !ok {
			g.nEdges++ // a→effTo newly created
		}
		g.out[a][effTo] += tot
		if to != b {
			delete(g.in[to], b)
		}
		g.in[effTo][a] = true
	}
	g.out[b] = nil

	// Redirect remaining x→b edges to x→a (includes x == a).
	for f := range g.in[b] {
		if f == b {
			continue // the b→b self loop was folded above
		}
		tot, ok := g.out[f][b]
		if !ok {
			continue
		}
		g.nEdges--
		if _, ok := g.out[f][a]; !ok {
			g.nEdges++
		}
		g.out[f][a] += tot
		delete(g.out[f], b)
		g.in[a][f] = true
	}
	g.in[b] = nil
	g.alive[b] = false
	g.nAlive--
}

// finalize compacts the merge graph into an immutable synopsis.
func (g *mergeGraph) finalize(dict *xmldoc.Dict, rootCluster int32) *Synopsis {
	remap := make([]int32, len(g.labels))
	for i := range remap {
		remap[i] = -1
	}
	s := &Synopsis{dict: dict}
	for c := int32(0); c < int32(len(g.labels)); c++ {
		if !g.alive[c] {
			continue
		}
		remap[c] = int32(len(s.labels))
		s.labels = append(s.labels, g.labels[c])
		s.counts = append(s.counts, g.counts[c])
	}
	s.out = make([][]Edge, len(s.labels))
	for c := int32(0); c < int32(len(g.labels)); c++ {
		if !g.alive[c] {
			continue
		}
		id := remap[c]
		cnt := float64(g.counts[c])
		for to, tot := range g.out[c] {
			s.out[id] = append(s.out[id], Edge{To: remap[to], Avg: float64(tot) / cnt})
		}
		sort.Slice(s.out[id], func(i, j int) bool { return s.out[id][i].To < s.out[id][j].To })
	}
	// The root may have been merged away into a surviving same-label
	// cluster; rootCluster's alive representative is found by label (the
	// root's label cluster chain always survives merging by label).
	rc := rootCluster
	if !g.alive[rc] {
		for c := int32(0); c < int32(len(g.labels)); c++ {
			if g.alive[c] && g.labels[c] == g.labels[rootCluster] {
				rc = c
				break
			}
		}
	}
	s.root = remap[rc]
	return s
}
