// Package treesketch reimplements the TreeSketch synopsis [Polyzotis,
// Garofalakis, Ioannidis, SIGMOD 2004] that the XSEED paper compares
// against (it subsumes XSketch for structural summarization).
//
// Construction starts from the label-split partition of the document's
// nodes, refines it to count-stability (every node of a cluster has the
// same number of children in every other cluster — the partition whose
// summary answers twig queries exactly), and then greedily merges clusters
// of equal label to fit a memory budget, choosing low-squared-error merges
// among sampled candidates. As the paper observes, the optimization problem
// is NP-hard and solutions are sub-optimal; and because the label-split
// basis collapses recursion levels, the summary cannot distinguish nesting
// depths — the structural reason TreeSketch loses to XSEED on recursive
// data. Construction cost explodes on structure-rich documents; an
// operation budget reproduces the paper's "DNF" behaviour.
package treesketch

import (
	"errors"
	"math/rand"
	"sort"

	"xseed/internal/xmldoc"
)

// ErrDNF is returned when construction exceeds its operation budget, the
// analogue of the paper's 24-hour construction cutoff ("DNF" in Table 2).
var ErrDNF = errors.New("treesketch: construction exceeded operation budget (did not finish)")

// Options configure construction.
type Options struct {
	// BudgetBytes is the target synopsis size (8 bytes per cluster + 12 per
	// edge, mirroring the XSEED kernel's accounting).
	BudgetBytes int

	// OpBudget bounds construction work (refinement node visits + merge
	// candidate evaluations). Zero means a generous default (1 << 30).
	OpBudget int64

	// MergeCandidates is the number of random candidate pairs evaluated per
	// merge step (greedy sampled search). Zero means 64.
	MergeCandidates int

	// Seed drives candidate sampling; constructions are deterministic for a
	// fixed seed.
	Seed int64

	// MaxRefinePasses bounds count-stability refinement; zero means 64.
	// (Refinement converges in at most tree-height passes.)
	MaxRefinePasses int
}

func (o Options) opBudget() int64 {
	if o.OpBudget <= 0 {
		return 1 << 30
	}
	return o.OpBudget
}

func (o Options) mergeCandidates() int {
	if o.MergeCandidates <= 0 {
		return 64
	}
	return o.MergeCandidates
}

func (o Options) maxRefinePasses() int {
	if o.MaxRefinePasses <= 0 {
		return 64
	}
	return o.MaxRefinePasses
}

// BuildStats reports construction effort.
type BuildStats struct {
	RefinePasses    int
	InitialClusters int // label-split clusters
	StableClusters  int // after count-stability refinement
	FinalClusters   int // after merging to budget
	Merges          int
	Ops             int64
	DNF             bool
}

// Synopsis is a built TreeSketch summary graph.
type Synopsis struct {
	dict   *xmldoc.Dict
	labels []xmldoc.LabelID // per cluster
	counts []int64          // elements per cluster
	out    [][]Edge         // per cluster, sorted by To
	root   int32
}

// Edge is a summary edge: on average, each element of the source cluster
// has Avg children in cluster To.
type Edge struct {
	To  int32
	Avg float64
}

// Dict returns the label dictionary.
func (s *Synopsis) Dict() *xmldoc.Dict { return s.dict }

// NumClusters returns the number of clusters.
func (s *Synopsis) NumClusters() int { return len(s.labels) }

// NumEdges returns the number of summary edges.
func (s *Synopsis) NumEdges() int {
	n := 0
	for _, es := range s.out {
		n += len(es)
	}
	return n
}

// SizeBytes returns the synopsis size under the shared accounting: 8 bytes
// per cluster (label + count) and 12 per edge (target + average).
func (s *Synopsis) SizeBytes() int { return 8*len(s.labels) + 12*s.NumEdges() }

// Build constructs a TreeSketch synopsis of the document within the budget.
func Build(doc *xmldoc.Document, opt Options) (*Synopsis, BuildStats, error) {
	var stats BuildStats
	n := doc.NumNodes()
	if n == 0 {
		return nil, stats, errors.New("treesketch: empty document")
	}
	opBudget := opt.opBudget()

	// 1. Label-split partition.
	cluster := make([]int32, n)
	next := int32(0)
	byLabel := map[xmldoc.LabelID]int32{}
	for i := 0; i < n; i++ {
		l := doc.Label(xmldoc.NodeID(i))
		c, ok := byLabel[l]
		if !ok {
			c = next
			next++
			byLabel[l] = c
		}
		cluster[i] = c
	}
	stats.InitialClusters = int(next)

	// 2. Refine to count-stability: split clusters by the multiset of
	// (child cluster, count) until a fixpoint.
	sig := make([]uint64, n)
	for pass := 0; pass < opt.maxRefinePasses(); pass++ {
		stats.RefinePasses++
		stats.Ops += int64(n)
		if stats.Ops > opBudget {
			stats.DNF = true
			return nil, stats, ErrDNF
		}
		// Signature per node: hash of sorted (childCluster, count) pairs.
		var pairs []childCount
		for i := 0; i < n; i++ {
			pairs = pairs[:0]
			pairs = childClusterCounts(doc, xmldoc.NodeID(i), cluster, pairs)
			sig[i] = hashPairs(pairs)
		}
		// Re-partition by (old cluster, signature).
		type key struct {
			old int32
			sig uint64
		}
		ids := map[key]int32{}
		newCluster := make([]int32, n)
		var newNext int32
		for i := 0; i < n; i++ {
			k := key{cluster[i], sig[i]}
			id, ok := ids[k]
			if !ok {
				id = newNext
				newNext++
				ids[k] = id
			}
			newCluster[i] = id
		}
		if int(newNext) == countClusters(cluster, next) {
			cluster = newCluster
			next = newNext
			break
		}
		cluster = newCluster
		next = newNext
	}
	stats.StableClusters = int(next)

	// 3. Aggregate the cluster graph with count totals.
	g := newMergeGraph(doc, cluster, int(next))

	// 4. Greedy merging to budget.
	rng := rand.New(rand.NewSource(opt.Seed))
	cands := opt.mergeCandidates()
	for g.sizeBytes() > opt.BudgetBytes && opt.BudgetBytes > 0 {
		stats.Ops += int64(cands) * 8
		if stats.Ops > opBudget {
			stats.DNF = true
			return nil, stats, ErrDNF
		}
		if !g.mergeStep(rng, cands) {
			break // nothing mergeable (one cluster per label)
		}
		stats.Merges++
	}

	syn := g.finalize(doc.Dict(), cluster[0])
	stats.FinalClusters = syn.NumClusters()
	return syn, stats, nil
}

type childCount struct {
	cluster int32
	count   int32
}

// childClusterCounts returns sorted (child cluster, count) pairs for node.
func childClusterCounts(doc *xmldoc.Document, node xmldoc.NodeID, cluster []int32, buf []childCount) []childCount {
	for c := doc.FirstChild(node); c >= 0; c = doc.NextSibling(node, c) {
		cl := cluster[c]
		found := false
		for i := range buf {
			if buf[i].cluster == cl {
				buf[i].count++
				found = true
				break
			}
		}
		if !found {
			buf = append(buf, childCount{cl, 1})
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].cluster < buf[j].cluster })
	return buf
}

func hashPairs(pairs []childCount) uint64 {
	h := uint64(1469598103934665603)
	const prime = 1099511628211
	for _, p := range pairs {
		h = (h ^ uint64(uint32(p.cluster))) * prime
		h = (h ^ uint64(uint32(p.count))) * prime
	}
	return h
}

func countClusters(cluster []int32, upper int32) int {
	seen := make([]bool, upper)
	n := 0
	for _, c := range cluster {
		if !seen[c] {
			seen[c] = true
			n++
		}
	}
	return n
}
