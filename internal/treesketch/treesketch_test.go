package treesketch

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"xseed/internal/fixtures"
	"xseed/internal/nok"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func buildDoc(t *testing.T, xml string) *xmldoc.Document {
	t.Helper()
	doc, err := xmldoc.Parse(xml)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// uniformDoc: every x has exactly 2 y children and 1 z child; every y has 3
// w children. The count-stable partition has one cluster per label and all
// estimates are exact.
const uniformDoc = `<r>
  <x><y><w/><w/><w/></y><y><w/><w/><w/></y><z/></x>
  <x><y><w/><w/><w/></y><y><w/><w/><w/></y><z/></x>
  <x><y><w/><w/><w/></y><y><w/><w/><w/></y><z/></x>
</r>`

func TestExactOnCountStableDocument(t *testing.T) {
	doc := buildDoc(t, uniformDoc)
	syn, stats, err := Build(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DNF {
		t.Fatal("unexpected DNF")
	}
	// Uniform structure: refinement must not split beyond label-split.
	if stats.StableClusters != stats.InitialClusters {
		t.Errorf("stable %d != initial %d", stats.StableClusters, stats.InitialClusters)
	}
	ev := nok.New(doc)
	for _, q := range []string{
		"/r", "/r/x", "/r/x/y", "/r/x/y/w", "/r/x/z",
		"/r/x[z]/y", "/r/x[y]/z", "//y/w", "//w", "//x//w",
	} {
		actual, _ := ev.CountString(q)
		got, err := syn.EstimateString(q)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, float64(actual), 1e-9) {
			t.Errorf("|%s| = %g, actual %d", q, got, actual)
		}
	}
}

func TestRefinementSplitsHeterogeneousClusters(t *testing.T) {
	// Two kinds of x: with and without y children. Count-stability must
	// split them, making /r/x[y]/z exact even though bare label-split
	// would blur it.
	xml := `<r>
	  <x><y/><z/></x><x><y/><z/></x>
	  <x><z/><z/><z/></x>
	</r>`
	doc := buildDoc(t, xml)
	syn, stats, err := Build(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.StableClusters <= stats.InitialClusters {
		t.Errorf("no split: stable %d, initial %d", stats.StableClusters, stats.InitialClusters)
	}
	ev := nok.New(doc)
	for _, q := range []string{"/r/x[y]/z", "/r/x/z", "//z"} {
		actual, _ := ev.CountString(q)
		got, _ := syn.EstimateString(q)
		if !approx(got, float64(actual), 1e-9) {
			t.Errorf("|%s| = %g, actual %d", q, got, actual)
		}
	}
}

func TestMergingToBudget(t *testing.T) {
	// A document with many structurally distinct x nodes; a tight budget
	// forces merging, size must land at or below budget (or the label-split
	// floor), and estimates remain sane.
	var sb strings.Builder
	rng := rand.New(rand.NewSource(5))
	sb.WriteString("<r>")
	for i := 0; i < 200; i++ {
		sb.WriteString("<x>")
		for j := rng.Intn(5); j > 0; j-- {
			sb.WriteString("<y/>")
		}
		for j := rng.Intn(3); j > 0; j-- {
			sb.WriteString("<z/>")
		}
		sb.WriteString("</x>")
	}
	sb.WriteString("</r>")
	doc := buildDoc(t, sb.String())

	big, statsBig, err := Build(doc, Options{BudgetBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	small, statsSmall, err := Build(doc, Options{BudgetBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if statsSmall.Merges == 0 {
		t.Error("tight budget forced no merges")
	}
	if small.SizeBytes() >= big.SizeBytes() {
		t.Errorf("small %d >= big %d", small.SizeBytes(), big.SizeBytes())
	}
	if small.SizeBytes() > 128 && small.NumClusters() > 4 {
		t.Errorf("size %d exceeds budget without reaching label floor (%d clusters)",
			small.SizeBytes(), small.NumClusters())
	}
	// Totals are preserved by merging: //y count is exact regardless.
	ev := nok.New(doc)
	actual, _ := ev.CountString("//y")
	got, _ := small.EstimateString("//y")
	if !approx(got, float64(actual), 1e-6) {
		t.Errorf("|//y| after merge = %g, actual %d", got, actual)
	}
	got, _ = small.EstimateString("/r/x")
	actualX, _ := ev.CountString("/r/x")
	if !approx(got, float64(actualX), 1e-6) {
		t.Errorf("|/r/x| after merge = %g, actual %d", got, actualX)
	}
	_ = statsBig
}

func TestDNFOnOpBudget(t *testing.T) {
	doc := buildDoc(t, fixtures.PaperFigure2)
	_, stats, err := Build(doc, Options{OpBudget: 10})
	if err != ErrDNF {
		t.Fatalf("err = %v, want ErrDNF", err)
	}
	if !stats.DNF {
		t.Error("stats.DNF not set")
	}
}

func TestRecursiveDocumentTerminationAndBias(t *testing.T) {
	// Deep single-label recursion: the summary has an s→s self loop; //s//s
	// estimation must terminate and (unlike XSEED) cannot recover recursion
	// levels.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 30; i++ {
		sb.WriteString("<s>")
	}
	for i := 0; i < 30; i++ {
		sb.WriteString("</s>")
	}
	sb.WriteString("</r>")
	doc := buildDoc(t, sb.String())
	syn, _, err := Build(doc, Options{BudgetBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	got, err := syn.EstimateString("//s//s")
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("estimate = %v", got)
	}
	if got <= 0 {
		t.Errorf("|//s//s| = %g, want > 0", got)
	}
}

func TestEstimateUnknownLabel(t *testing.T) {
	doc := buildDoc(t, uniformDoc)
	syn, _, err := Build(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := syn.EstimateString("//nope"); got != 0 {
		t.Errorf("unknown label = %g", got)
	}
	if got := syn.Estimate(&xpath.Path{}); got != 0 {
		t.Errorf("empty query = %g", got)
	}
}

func TestWildcardEstimates(t *testing.T) {
	doc := buildDoc(t, uniformDoc)
	syn, _, err := Build(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := nok.New(doc)
	for _, q := range []string{"//*", "/r/*", "/r/x/*"} {
		actual, _ := ev.CountString(q)
		got, _ := syn.EstimateString(q)
		if !approx(got, float64(actual), 1e-9) {
			t.Errorf("|%s| = %g, actual %d", q, got, actual)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	doc := buildDoc(t, fixtures.PaperFigure2)
	a, _, err := Build(doc, Options{BudgetBytes: 96, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Build(doc, Options{BudgetBytes: 96, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"//s//p", "/a/c/s", "//t"} {
		ea, _ := a.EstimateString(q)
		eb, _ := b.EstimateString(q)
		if ea != eb {
			t.Errorf("%s: nondeterministic %g vs %g", q, ea, eb)
		}
	}
}

func TestEmptyDocumentRejected(t *testing.T) {
	dict := xmldoc.NewDict()
	b := xmldoc.NewBuilder(dict)
	if _, err := b.Document(); err == nil {
		t.Skip("builder unexpectedly produced empty document")
	}
}
