package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"xseed/api"
)

// Payload codecs: hand-rolled append-style encoders (allocation-free when
// the destination has capacity — pair with GetBuf/PutBuf) and bounds-checked
// decoders for every hot-path frame body. The encodings are specified
// normatively in docs/PROTOCOL.md; the primitives are:
//
//	uvarint  — binary.Uvarint
//	str      — uvarint byte length + UTF-8 bytes
//	blob     — uvarint byte length + raw bytes
//	f64      — 8 bytes, IEEE-754 bits, little-endian
//	flags    — 1 byte, bit meanings per frame
//
// Decoders validate every length prefix against the bytes actually present
// before allocating, so a hostile frame costs at most its own size.

// EstimateReq item flags.
const estReqStreaming = 1 << 0

// EstimateResp item flags.
const (
	estItemCached   = 1 << 0
	estItemStreamed = 1 << 1
	estItemHasError = 1 << 2
)

// FeedbackAck flags.
const ackHasError = 1 << 0

// AppendEstimateReq encodes an EstimateBatch request:
//
//	name str | flags(1) | nq uvarint | nq × (query str)
func AppendEstimateReq(b []byte, name string, queries []string, streaming bool) []byte {
	b = appendString(b, name)
	var flags byte
	if streaming {
		flags |= estReqStreaming
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(len(queries)))
	for _, q := range queries {
		b = appendString(b, q)
	}
	return b
}

// DecodeEstimateReq decodes an EstimateReq payload.
func DecodeEstimateReq(p []byte) (name string, queries []string, streaming bool, err error) {
	d := dec{b: p}
	name = d.str()
	flags := d.byte()
	n := d.count(1) // a query is at least one length byte
	if d.err != nil {
		return "", nil, false, d.fail("EstimateReq")
	}
	queries = make([]string, n)
	for i := range queries {
		queries[i] = d.str()
	}
	if err := d.finish("EstimateReq"); err != nil {
		return "", nil, false, err
	}
	return name, queries, flags&estReqStreaming != 0, nil
}

// AppendEstimateResp encodes a batch estimate response:
//
//	n uvarint | n × item
//	item := flags(1) | query str | (error fields if hasError, else estimate f64)
func AppendEstimateResp(b []byte, items []api.EstimateItem) []byte {
	b = binary.AppendUvarint(b, uint64(len(items)))
	for i := range items {
		it := &items[i]
		var flags byte
		if it.Cached {
			flags |= estItemCached
		}
		if it.Streamed {
			flags |= estItemStreamed
		}
		if it.Error != nil {
			flags |= estItemHasError
		}
		b = append(b, flags)
		b = appendString(b, it.Query)
		if it.Error != nil {
			b = appendError(b, it.Error)
		} else {
			b = appendF64(b, it.Estimate)
		}
	}
	return b
}

// DecodeEstimateResp decodes an EstimateResp payload.
func DecodeEstimateResp(p []byte) ([]api.EstimateItem, error) {
	d := dec{b: p}
	n := d.count(2) // an item is at least flags + one length byte
	if d.err != nil {
		return nil, d.fail("EstimateResp")
	}
	items := make([]api.EstimateItem, n)
	for i := range items {
		it := &items[i]
		flags := d.byte()
		it.Cached = flags&estItemCached != 0
		it.Streamed = flags&estItemStreamed != 0
		it.Query = d.str()
		if flags&estItemHasError != 0 {
			it.Error = d.apiError()
		} else {
			it.Estimate = d.f64()
		}
	}
	if err := d.finish("EstimateResp"); err != nil {
		return nil, err
	}
	return items, nil
}

// AppendFeedbackReq encodes a feedback record:
//
//	name str | query str | actual f64
func AppendFeedbackReq(b []byte, name, query string, actual float64) []byte {
	b = appendString(b, name)
	b = appendString(b, query)
	return appendF64(b, actual)
}

// DecodeFeedbackReq decodes a FeedbackReq payload.
func DecodeFeedbackReq(p []byte) (name, query string, actual float64, err error) {
	d := dec{b: p}
	name = d.str()
	query = d.str()
	actual = d.f64()
	if err := d.finish("FeedbackReq"); err != nil {
		return "", "", 0, err
	}
	return name, query, actual, nil
}

// AppendFeedbackAck encodes a feedback acknowledgement; e is nil on
// success:
//
//	flags(1) | (error fields if hasError)
func AppendFeedbackAck(b []byte, e *api.Error) []byte {
	if e == nil {
		return append(b, 0)
	}
	b = append(b, ackHasError)
	return appendError(b, e)
}

// DecodeFeedbackAck decodes a FeedbackAck payload; a nil error with nil
// *api.Error is a successful ack.
func DecodeFeedbackAck(p []byte) (*api.Error, error) {
	d := dec{b: p}
	flags := d.byte()
	var ae *api.Error
	if flags&ackHasError != 0 {
		ae = d.apiError()
	}
	if err := d.finish("FeedbackAck"); err != nil {
		return nil, err
	}
	return ae, nil
}

// AppendFeedbackBatchReq encodes a feedback batch:
//
//	name str | n uvarint | n × (query str | actual f64)
func AppendFeedbackBatchReq(b []byte, name string, items []api.FeedbackItem) []byte {
	b = appendString(b, name)
	b = binary.AppendUvarint(b, uint64(len(items)))
	for i := range items {
		b = appendString(b, items[i].Query)
		b = appendF64(b, items[i].Actual)
	}
	return b
}

// DecodeFeedbackBatchReq decodes a FeedbackBatchReq payload.
func DecodeFeedbackBatchReq(p []byte) (name string, items []api.FeedbackItem, err error) {
	d := dec{b: p}
	name = d.str()
	n := d.count(9) // an item is at least one length byte + 8 f64 bytes
	if d.err != nil {
		return "", nil, d.fail("FeedbackBatchReq")
	}
	items = make([]api.FeedbackItem, n)
	for i := range items {
		items[i].Query = d.str()
		items[i].Actual = d.f64()
	}
	if err := d.finish("FeedbackBatchReq"); err != nil {
		return "", nil, err
	}
	return name, items, nil
}

// AppendFeedbackBatchAck encodes a feedback batch acknowledgement: one
// positional outcome per request item, nil = success:
//
//	n uvarint | n × (flags(1) | (error fields if hasError))
func AppendFeedbackBatchAck(b []byte, errs []*api.Error) []byte {
	b = binary.AppendUvarint(b, uint64(len(errs)))
	for _, e := range errs {
		if e == nil {
			b = append(b, 0)
			continue
		}
		b = append(b, ackHasError)
		b = appendError(b, e)
	}
	return b
}

// DecodeFeedbackBatchAck decodes a FeedbackBatchAck payload into one
// *api.Error slot per item (nil = that item succeeded).
func DecodeFeedbackBatchAck(p []byte) ([]*api.Error, error) {
	d := dec{b: p}
	n := d.count(1) // an item is at least its flags byte
	if d.err != nil {
		return nil, d.fail("FeedbackBatchAck")
	}
	errs := make([]*api.Error, n)
	for i := range errs {
		if d.byte()&ackHasError != 0 {
			errs[i] = d.apiError()
		}
	}
	if err := d.finish("FeedbackBatchAck"); err != nil {
		return nil, err
	}
	return errs, nil
}

// AppendAuthReq encodes a bearer-token presentation:
//
//	token str
func AppendAuthReq(b []byte, token string) []byte {
	return appendString(b, token)
}

// DecodeAuthReq decodes an AuthReq payload.
func DecodeAuthReq(p []byte) (token string, err error) {
	d := dec{b: p}
	token = d.str()
	if err := d.finish("AuthReq"); err != nil {
		return "", err
	}
	return token, nil
}

// AppendAuthResp encodes an authentication confirmation:
//
//	tenant str
func AppendAuthResp(b []byte, tenant string) []byte {
	return appendString(b, tenant)
}

// DecodeAuthResp decodes an AuthResp payload, returning the tenant ID the
// connection is now bound to.
func DecodeAuthResp(p []byte) (tenant string, err error) {
	d := dec{b: p}
	tenant = d.str()
	if err := d.finish("AuthResp"); err != nil {
		return "", err
	}
	return tenant, nil
}

// AppendError encodes a whole-request error frame body — the same field
// layout errors embed inside EstimateResp items and FeedbackAcks:
//
//	code str | msg str | detail blob (raw JSON, may be empty)
func AppendError(b []byte, e *api.Error) []byte {
	return appendError(b, e)
}

// DecodeError decodes an Error frame payload. It never returns a nil
// *api.Error with a nil error.
func DecodeError(p []byte) (*api.Error, error) {
	d := dec{b: p}
	ae := d.apiError()
	if err := d.finish("Error"); err != nil {
		return nil, err
	}
	return ae, nil
}

func appendError(b []byte, e *api.Error) []byte {
	b = appendString(b, e.Code)
	b = appendString(b, e.Msg)
	return appendBlob(b, e.Detail)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBlob(b, blob []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(blob)))
	return append(b, blob...)
}

func appendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// dec is a bounds-checked payload cursor. The first failure latches in err;
// every later read returns zero values, so decode functions can read a
// whole structure and check once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) setErr(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s at offset %d", msg, d.off)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.setErr("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.setErr("truncated byte")
		return 0
	}
	b := d.b[d.off]
	d.off++
	return b
}

// count reads an element count and sanity-checks it against the bytes
// remaining: with each element at least minBytes long, a count the payload
// cannot possibly hold is rejected before any make() sized by it.
func (d *dec) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)-d.off)/uint64(minBytes) {
		d.setErr(fmt.Sprintf("count %d exceeds payload", v))
		return 0
	}
	return int(v)
}

func (d *dec) str() string {
	return string(d.raw())
}

func (d *dec) blob() []byte {
	raw := d.raw()
	if len(raw) == 0 {
		return nil
	}
	out := make([]byte, len(raw))
	copy(out, raw)
	return out
}

// raw reads a length-prefixed field, aliasing the payload.
func (d *dec) raw() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.setErr(fmt.Sprintf("field length %d exceeds payload", n))
		return nil
	}
	f := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return f
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b)-d.off < 8 {
		d.setErr("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *dec) apiError() *api.Error {
	code := d.str()
	msg := d.str()
	detail := d.blob()
	if d.err != nil {
		return nil
	}
	e := &api.Error{Code: code, Msg: msg}
	if len(detail) > 0 {
		e.Detail = json.RawMessage(detail)
	}
	return e
}

// fail wraps the latched error with the frame name.
func (d *dec) fail(frame string) error {
	return fmt.Errorf("wire: decode %s: %w", frame, d.err)
}

// finish asserts the payload was fully and cleanly consumed: trailing
// bytes mean the peer encoded something this version does not understand
// inside a frame it claims to share, which is corruption, not extension
// (new fields get new frame types — see the versioning rules in
// docs/PROTOCOL.md).
func (d *dec) finish(frame string) error {
	if d.err != nil {
		return d.fail(frame)
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wire: decode %s: %d trailing bytes", frame, len(d.b)-d.off)
	}
	return nil
}
