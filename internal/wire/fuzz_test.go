package wire

import (
	"bytes"
	"testing"

	"xseed/api"
)

// FuzzXTPDecode throws arbitrary bytes at the frame reader and every
// registered payload decoder. The invariants: no panic, no allocation
// driven by an unchecked length prefix (a malformed length must error, not
// OOM), and truncated frames always error. CI runs this with a 30-second
// budget in the quick lane.
func FuzzXTPDecode(f *testing.F) {
	// Seed with well-formed traffic so mutation explores the format's
	// neighborhood, not just random noise.
	var seed bytes.Buffer
	w := NewWriter(&seed)
	w.WriteFrame(FrameEstimateReq, 1,
		AppendEstimateReq(nil, "auction", []string{"/a/b", "//c[d]"}, true))
	w.WriteFrame(FrameEstimateResp, 1, AppendEstimateResp(nil, []api.EstimateItem{
		{Query: "/a/b", Estimate: 42, Cached: true},
		{Query: "bad[", Error: api.NewParseError("boom", 3, "[")},
	}))
	w.WriteFrame(FrameFeedbackReq, 2, AppendFeedbackReq(nil, "auction", "/a/b", 7))
	w.WriteFrame(FrameFeedbackAck, 2, AppendFeedbackAck(nil, nil))
	w.WriteFrame(FrameError, 3, AppendError(nil, api.Errorf(api.CodeNotFound, "nope")))
	w.WriteFrame(FrameStatsResp, 4, []byte(`{"synopses":[]}`))
	w.WriteFrame(FramePing, 5, nil)
	w.WriteFrame(FrameAuthReq, 6, AppendAuthReq(nil, "s3cret-token"))
	w.WriteFrame(FrameAuthResp, 6, AppendAuthResp(nil, "acme"))
	w.WriteFrame(FrameReplHello, 0, AppendReplHello(nil, "node-a"))
	w.WriteFrame(FrameReplWelcome, 0, AppendReplWelcome(nil, "node-b"))
	w.WriteFrame(FrameBaseShip, 7, AppendBaseShip(nil, BaseShip{
		Key: "acme\x00orders", Seq: 3, Ver: 12, Budget: -1, Created: 1700000000000000000,
		Source: "snapshot", Snapshot: []byte("XSYNbytes"),
	}))
	w.WriteFrame(FrameSegmentData, 8, AppendSegmentData(nil, SegmentData{
		Key: "orders", Seq: 3, Off: 4096, Data: []byte{0xde, 0xad, 0xbe, 0xef},
	}))
	w.WriteFrame(FrameSegmentAck, 8, AppendSegmentAck(nil, SegmentAck{
		Key: "orders", Seq: 3, Off: 4100, OK: true,
	}))
	w.WriteFrame(FrameRingReq, 9, nil)
	w.WriteFrame(FrameRingResp, 9, []byte(`{"epoch":1,"replicas":1,"nodes":[]}`))
	w.WriteFrame(FrameReplDelete, 10, AppendReplDelete(nil, "orders"))
	w.WriteFrame(FrameFeedbackBatchReq, 11, AppendFeedbackBatchReq(nil, "auction", []api.FeedbackItem{
		{Query: "/a/b", Actual: 7},
		{Query: "//c[d]", Actual: 0.5},
	}))
	w.WriteFrame(FrameFeedbackBatchAck, 11, AppendFeedbackBatchAck(nil, []*api.Error{
		nil,
		api.NewParseError("boom", 3, "["),
	}))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})

	decoders := map[FrameType]func([]byte) error{}
	for _, fi := range Frames() {
		decoders[fi.Type] = fi.Decode
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bound work per input
			fr, err := r.ReadFrame()
			if err != nil {
				return // any error is a valid outcome; panics are not
			}
			if len(fr.Payload) > MaxFrame {
				t.Fatalf("reader produced %d-byte payload above MaxFrame", len(fr.Payload))
			}
			if dec, ok := decoders[fr.Type]; ok {
				dec(fr.Payload) // must not panic; errors are fine
			}
		}
	})
}
