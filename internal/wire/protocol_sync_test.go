package wire

import (
	"fmt"
	"os"
	"regexp"
	"testing"
)

// protocolTableRow matches one row of the PROTOCOL.md §3 frame table:
//
//	| 0x01 | EstimateReq  | C→S       | ... |
var protocolTableRow = regexp.MustCompile(`(?m)^\|\s*0x([0-9A-Fa-f]{2})\s*\|\s*(\w+)\s*\|\s*(C→S|S→C)\s*\|`)

// TestProtocolDocMatchesFrameRegistry is the doc↔code sync gate: the frame
// table in docs/PROTOCOL.md and the Frames() registry must name the exact
// same frame types with the same codes and directions. Adding a frame to
// either side without the other fails here — the spec cannot drift from
// the decoders that implement it.
func TestProtocolDocMatchesFrameRegistry(t *testing.T) {
	doc, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("the normative spec must exist: %v", err)
	}
	rows := protocolTableRow.FindAllStringSubmatch(string(doc), -1)
	if len(rows) == 0 {
		t.Fatal("no frame-table rows found in docs/PROTOCOL.md — table reformatted?")
	}

	documented := make(map[FrameType]struct{ name, dir string })
	for _, row := range rows {
		var code byte
		fmt.Sscanf(row[1], "%02X", &code)
		if _, dup := documented[FrameType(code)]; dup {
			t.Errorf("docs/PROTOCOL.md documents code 0x%02x twice", code)
		}
		documented[FrameType(code)] = struct{ name, dir string }{row[2], row[3]}
	}

	registered := Frames()
	for _, fi := range registered {
		d, ok := documented[fi.Type]
		if !ok {
			t.Errorf("frame %s (0x%02x) has a decoder but no row in docs/PROTOCOL.md", fi.Name, byte(fi.Type))
			continue
		}
		if d.name != fi.Name {
			t.Errorf("frame 0x%02x is %q in code but %q in docs/PROTOCOL.md", byte(fi.Type), fi.Name, d.name)
		}
		if d.dir != fi.Dir {
			t.Errorf("frame %s direction is %q in code but %q in docs/PROTOCOL.md", fi.Name, fi.Dir, d.dir)
		}
		delete(documented, fi.Type)
	}
	for code, d := range documented {
		t.Errorf("docs/PROTOCOL.md names frame %s (0x%02x) but no decoder is registered for it", d.name, byte(code))
	}
	if len(registered) == 0 {
		t.Fatal("Frames() registry is empty")
	}

	// Every decoder in the registry must be exercised by the fuzz target's
	// seed corpus shape: a nil Decode would silently skip spec coverage.
	for _, fi := range registered {
		if fi.Decode == nil {
			t.Errorf("frame %s has no Decode validator", fi.Name)
		}
	}
}
