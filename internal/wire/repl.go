package wire

import (
	"encoding/binary"
)

// Replication frame codecs. These frames ride the ordinary xtp framing on a
// node's cluster-internal repl listener (see docs/PROTOCOL.md §4.10): a
// primary streams base snapshots and validated delta-log segments to its
// standbys and waits for positional acks. Bodies carry file bytes verbatim
// — the standby's (base, log) pair is bit-identical to the primary's, which
// is what makes failover replay parity provable.
//
// One new primitive appears here: varint, a signed zigzag LEB128 integer
// (binary.AppendVarint / binary.Varint), used for fields that are signed by
// contract (a budget of -1 means "explicitly unlimited").

// SegmentAck flags.
const (
	ackSegOK = 1 << 0
	// ackSegNeedBase asks the sender to restart this synopsis from a
	// BaseShip: the standby's generation or offset no longer matches the
	// sender's (compaction on the primary, divergent history on the
	// standby).
	ackSegNeedBase = 1 << 1
)

// BaseShip is the decoded body of a FrameBaseShip: one synopsis's full base
// snapshot plus the manifest metadata a standby needs to host it.
type BaseShip struct {
	Key      string // (tenant, name) store key
	Seq      uint64 // the primary's generation number, adopted verbatim
	Ver      uint64 // cache-scope version to resume from
	Budget   int64  // last applied SetBudget total (0 = never)
	Created  int64  // creation time, Unix nanoseconds
	Source   string
	Snapshot []byte // base-<seq>.xsyn file bytes, verbatim
}

// SegmentData is the decoded body of a FrameSegmentData: a run of whole,
// checksummed delta-log records to append at offset Off of generation Seq.
type SegmentData struct {
	Key  string
	Seq  uint64
	Off  int64  // byte offset the run starts at in the standby's log
	Data []byte // delta-log file bytes, verbatim
}

// SegmentAck is the decoded body of a FrameSegmentAck: the standby's
// durable position for Key after applying a BaseShip or SegmentData, or a
// request to restart from a base ship (NeedBase).
type SegmentAck struct {
	Key      string
	Seq      uint64
	Off      int64
	OK       bool
	NeedBase bool
}

// AppendReplHello encodes a replication-stream greeting:
//
//	node str
func AppendReplHello(b []byte, node string) []byte {
	return appendString(b, node)
}

// DecodeReplHello decodes a ReplHello payload, returning the sending
// node's ID.
func DecodeReplHello(p []byte) (node string, err error) {
	d := dec{b: p}
	node = d.str()
	if err := d.finish("ReplHello"); err != nil {
		return "", err
	}
	return node, nil
}

// AppendReplWelcome encodes a replication-stream acceptance:
//
//	node str
func AppendReplWelcome(b []byte, node string) []byte {
	return appendString(b, node)
}

// DecodeReplWelcome decodes a ReplWelcome payload, returning the receiving
// node's ID.
func DecodeReplWelcome(p []byte) (node string, err error) {
	d := dec{b: p}
	node = d.str()
	if err := d.finish("ReplWelcome"); err != nil {
		return "", err
	}
	return node, nil
}

// AppendBaseShip encodes a full-snapshot ship:
//
//	key str | seq uvarint | ver uvarint | budget varint | created varint |
//	source str | snapshot blob
func AppendBaseShip(b []byte, s BaseShip) []byte {
	b = appendString(b, s.Key)
	b = binary.AppendUvarint(b, s.Seq)
	b = binary.AppendUvarint(b, s.Ver)
	b = binary.AppendVarint(b, s.Budget)
	b = binary.AppendVarint(b, s.Created)
	b = appendString(b, s.Source)
	return appendBlob(b, s.Snapshot)
}

// DecodeBaseShip decodes a BaseShip payload.
func DecodeBaseShip(p []byte) (BaseShip, error) {
	d := dec{b: p}
	s := BaseShip{
		Key:     d.str(),
		Seq:     d.uvarint(),
		Ver:     d.uvarint(),
		Budget:  d.varint(),
		Created: d.varint(),
		Source:  d.str(),
	}
	s.Snapshot = d.blob()
	if err := d.finish("BaseShip"); err != nil {
		return BaseShip{}, err
	}
	return s, nil
}

// AppendSegmentData encodes a delta-log segment:
//
//	key str | seq uvarint | off uvarint | data blob
func AppendSegmentData(b []byte, s SegmentData) []byte {
	b = appendString(b, s.Key)
	b = binary.AppendUvarint(b, s.Seq)
	b = binary.AppendUvarint(b, uint64(s.Off))
	return appendBlob(b, s.Data)
}

// DecodeSegmentData decodes a SegmentData payload.
func DecodeSegmentData(p []byte) (SegmentData, error) {
	d := dec{b: p}
	s := SegmentData{
		Key: d.str(),
		Seq: d.uvarint(),
		Off: int64(d.uvarint()),
	}
	s.Data = d.blob()
	if err := d.finish("SegmentData"); err != nil {
		return SegmentData{}, err
	}
	return s, nil
}

// AppendSegmentAck encodes a positional acknowledgement:
//
//	flags(1) | key str | seq uvarint | off uvarint
func AppendSegmentAck(b []byte, a SegmentAck) []byte {
	var flags byte
	if a.OK {
		flags |= ackSegOK
	}
	if a.NeedBase {
		flags |= ackSegNeedBase
	}
	b = append(b, flags)
	b = appendString(b, a.Key)
	b = binary.AppendUvarint(b, a.Seq)
	return binary.AppendUvarint(b, uint64(a.Off))
}

// DecodeSegmentAck decodes a SegmentAck payload.
func DecodeSegmentAck(p []byte) (SegmentAck, error) {
	d := dec{b: p}
	flags := d.byte()
	a := SegmentAck{
		Key: d.str(),
		Seq: d.uvarint(),
		Off: int64(d.uvarint()),
	}
	a.OK = flags&ackSegOK != 0
	a.NeedBase = flags&ackSegNeedBase != 0
	if err := d.finish("SegmentAck"); err != nil {
		return SegmentAck{}, err
	}
	return a, nil
}

// AppendReplDelete encodes a replicated deletion:
//
//	key str
func AppendReplDelete(b []byte, key string) []byte {
	return appendString(b, key)
}

// DecodeReplDelete decodes a ReplDelete payload, returning the deleted
// synopsis's store key.
func DecodeReplDelete(p []byte) (key string, err error) {
	d := dec{b: p}
	key = d.str()
	if err := d.finish("ReplDelete"); err != nil {
		return "", err
	}
	return key, nil
}

// varint reads one signed zigzag LEB128 integer.
func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.setErr("bad varint")
		return 0
	}
	d.off += n
	return v
}
