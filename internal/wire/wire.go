// Package wire implements xtp, the xseed transport protocol: a
// length-prefixed binary framing over TCP that carries the same request,
// response, and error types as the HTTP JSON API (xseed/api), at a
// per-call cost of microseconds instead of an HTTP round trip's parsing
// and allocation.
//
// The normative specification — handshake, frame layout, per-frame body
// encodings, error semantics, and versioning rules — is docs/PROTOCOL.md;
// a sync test asserts that every frame type named there has a decoder
// registered in Frames, so the document and this package cannot drift.
//
// # Stream shape
//
// A connection opens with a fixed 4-byte handshake in each direction
// ("XTP" + version byte, client first), then becomes a sequence of frames
// in both directions:
//
//	frame := type(1 byte) corrID(uvarint) length(uvarint) payload(length bytes)
//
// Responses are matched to requests by correlation ID, so many requests
// can be in flight on one connection at once (pipelining); server-initiated
// frames use correlation ID 0. Frame payloads use uvarint length-prefixed
// strings, fixed 8-byte little-endian float64s, and raw byte blobs — no
// reflection, no intermediate buffers beyond one pooled scratch per
// encode.
//
// # Safety
//
// Decoding never panics and never allocates proportionally to a length
// prefix before checking it against the bytes actually present: a
// malformed or truncated frame is an error, not an OOM. Reader enforces
// MaxFrame on the wire before buffering a payload.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Handshake and framing constants. Version is the protocol revision this
// package speaks; see docs/PROTOCOL.md for the compatibility rules.
const (
	// Version is the current xtp protocol version, exchanged in the
	// handshake. There is exactly one: version 1.
	Version byte = 1

	// MaxFrame bounds one frame's payload on the wire. A length prefix
	// above it is a protocol error — the peer is misbehaving or the stream
	// lost sync — and must close the connection.
	MaxFrame = 16 << 20

	// handshakeLen is the fixed byte length of the handshake each peer
	// sends: "XTP" plus one version byte.
	handshakeLen = 4
)

// magic is the 3-byte protocol tag opening every handshake.
var magic = [3]byte{'X', 'T', 'P'}

// FrameType identifies a frame's body encoding and direction.
type FrameType byte

// Frame types of protocol version 1. Codes are part of the wire contract
// and never reused; new types append.
const (
	// FrameEstimateReq (client→server) asks for a batch of cardinality
	// estimates against one synopsis.
	FrameEstimateReq FrameType = 0x01
	// FrameEstimateResp (server→client) answers an EstimateReq with one
	// item per query in request order (partial success per query).
	FrameEstimateResp FrameType = 0x02
	// FrameFeedbackReq (client→server) records an executed query's actual
	// cardinality (fire-and-forget on the client; acked individually).
	FrameFeedbackReq FrameType = 0x03
	// FrameFeedbackAck (server→client) acknowledges one FeedbackReq,
	// carrying its typed error when the feedback failed.
	FrameFeedbackAck FrameType = 0x04
	// FrameStatsReq (client→server) asks for server-wide stats.
	FrameStatsReq FrameType = 0x05
	// FrameStatsResp (server→client) carries the JSON encoding of
	// api.Stats (stats is a cold path; its deeply nested payload is not
	// worth a hand-rolled encoding).
	FrameStatsResp FrameType = 0x06
	// FrameError (server→client) fails one request wholesale with a typed
	// api.Error (unknown synopsis, canceled context, undecodable body).
	FrameError FrameType = 0x07
	// FramePing (client→server) is a liveness probe.
	FramePing FrameType = 0x08
	// FramePong (server→client) answers a Ping with the same correlation ID.
	FramePong FrameType = 0x09
	// FrameGoaway (server→client, correlation ID 0) announces a graceful
	// shutdown: in-flight responses still arrive, new requests should go
	// to a fresh connection.
	FrameGoaway FrameType = 0x0A
	// FrameAuthReq (client→server) presents a bearer token, binding the
	// connection to the token's tenant for every later frame. Appended per
	// the §6 evolution rules: an old server treats it as an unknown frame
	// type and closes, which an authenticating client must surface as a
	// dial failure.
	FrameAuthReq FrameType = 0x0B
	// FrameAuthResp (server→client) confirms an AuthReq, carrying the
	// resolved tenant ID. A rejected token gets FrameError (code
	// "unauthorized") and the connection closes.
	FrameAuthResp FrameType = 0x0C
	// FrameReplHello (client→server) opens a replication stream on a node's
	// repl listener, naming the sending node. Replication frames ride the
	// same xtp framing as the client protocol but on a separate,
	// cluster-internal listener.
	FrameReplHello FrameType = 0x0D
	// FrameReplWelcome (server→client) accepts a ReplHello, naming the
	// receiving node.
	FrameReplWelcome FrameType = 0x0E
	// FrameBaseShip (client→server) ships one synopsis's full base snapshot
	// (verbatim file bytes) plus its manifest metadata, starting a fresh
	// replicated generation on the standby.
	FrameBaseShip FrameType = 0x0F
	// FrameSegmentData (client→server) appends a validated run of delta-log
	// records (verbatim log bytes) at a stated (generation, offset) on the
	// standby's copy.
	FrameSegmentData FrameType = 0x10
	// FrameSegmentAck (server→client) acknowledges a BaseShip or
	// SegmentData, reporting the standby's durable position — or asks the
	// sender to restart from a base ship when generations diverged.
	FrameSegmentAck FrameType = 0x11
	// FrameRingReq (client→server) asks for the node's current view of the
	// cluster partition ring.
	FrameRingReq FrameType = 0x12
	// FrameRingResp (server→client) answers a RingReq with the JSON
	// encoding of api.Ring (a cold control-plane path; JSON keeps it
	// identical to GET /v1/cluster/ring).
	FrameRingResp FrameType = 0x13
	// FrameReplDelete (client→server) propagates a synopsis deletion to the
	// standby.
	FrameReplDelete FrameType = 0x14
	// FrameFeedbackBatchReq (client→server) records a batch of executed
	// queries' actual cardinalities in one frame. Appended per the §6
	// evolution rules (new code, never reused; old servers close on it).
	FrameFeedbackBatchReq FrameType = 0x15
	// FrameFeedbackBatchAck (server→client) answers a FeedbackBatchReq with
	// one positional outcome per item (partial success, like EstimateResp).
	FrameFeedbackBatchAck FrameType = 0x16
)

// String names the frame type for logs and metrics.
func (t FrameType) String() string {
	for _, fi := range Frames() {
		if fi.Type == t {
			return fi.Name
		}
	}
	return fmt.Sprintf("unknown(0x%02x)", byte(t))
}

// FrameInfo describes one frame type of the protocol: its code, spec name,
// direction, and a payload validator. Decode parses (and discards) a
// payload of this type, returning an error for a malformed body — it backs
// FuzzXTPDecode and the docs/PROTOCOL.md sync test, and is the proof that
// every specified frame has a decoder.
type FrameInfo struct {
	Type   FrameType
	Name   string // spec name, as written in docs/PROTOCOL.md
	Dir    string // "C→S" or "S→C"
	Decode func(payload []byte) error
}

// Frames is the authoritative registry of protocol-v1 frame types. The
// docs/PROTOCOL.md frame table is sync-tested against it.
func Frames() []FrameInfo {
	return []FrameInfo{
		{FrameEstimateReq, "EstimateReq", "C→S", func(p []byte) error {
			_, _, _, err := DecodeEstimateReq(p)
			return err
		}},
		{FrameEstimateResp, "EstimateResp", "S→C", func(p []byte) error {
			_, err := DecodeEstimateResp(p)
			return err
		}},
		{FrameFeedbackReq, "FeedbackReq", "C→S", func(p []byte) error {
			_, _, _, err := DecodeFeedbackReq(p)
			return err
		}},
		{FrameFeedbackAck, "FeedbackAck", "S→C", func(p []byte) error {
			_, err := DecodeFeedbackAck(p)
			return err
		}},
		{FrameStatsReq, "StatsReq", "C→S", decodeEmpty},
		{FrameStatsResp, "StatsResp", "S→C", func(p []byte) error {
			if !json.Valid(p) {
				return fmt.Errorf("wire: StatsResp payload is not valid JSON")
			}
			return nil
		}},
		{FrameError, "Error", "S→C", func(p []byte) error {
			_, err := DecodeError(p)
			return err
		}},
		{FramePing, "Ping", "C→S", decodeEmpty},
		{FramePong, "Pong", "S→C", decodeEmpty},
		{FrameGoaway, "Goaway", "S→C", decodeEmpty},
		{FrameAuthReq, "AuthReq", "C→S", func(p []byte) error {
			_, err := DecodeAuthReq(p)
			return err
		}},
		{FrameAuthResp, "AuthResp", "S→C", func(p []byte) error {
			_, err := DecodeAuthResp(p)
			return err
		}},
		{FrameReplHello, "ReplHello", "C→S", func(p []byte) error {
			_, err := DecodeReplHello(p)
			return err
		}},
		{FrameReplWelcome, "ReplWelcome", "S→C", func(p []byte) error {
			_, err := DecodeReplWelcome(p)
			return err
		}},
		{FrameBaseShip, "BaseShip", "C→S", func(p []byte) error {
			_, err := DecodeBaseShip(p)
			return err
		}},
		{FrameSegmentData, "SegmentData", "C→S", func(p []byte) error {
			_, err := DecodeSegmentData(p)
			return err
		}},
		{FrameSegmentAck, "SegmentAck", "S→C", func(p []byte) error {
			_, err := DecodeSegmentAck(p)
			return err
		}},
		{FrameRingReq, "RingReq", "C→S", decodeEmpty},
		{FrameRingResp, "RingResp", "S→C", func(p []byte) error {
			if !json.Valid(p) {
				return fmt.Errorf("wire: RingResp payload is not valid JSON")
			}
			return nil
		}},
		{FrameReplDelete, "ReplDelete", "C→S", func(p []byte) error {
			_, err := DecodeReplDelete(p)
			return err
		}},
		{FrameFeedbackBatchReq, "FeedbackBatchReq", "C→S", func(p []byte) error {
			_, _, err := DecodeFeedbackBatchReq(p)
			return err
		}},
		{FrameFeedbackBatchAck, "FeedbackBatchAck", "S→C", func(p []byte) error {
			_, err := DecodeFeedbackBatchAck(p)
			return err
		}},
	}
}

// decodeEmpty validates the bodyless frames (Ping, Pong, Goaway, StatsReq).
func decodeEmpty(p []byte) error {
	if len(p) != 0 {
		return fmt.Errorf("wire: unexpected %d-byte payload on a bodyless frame", len(p))
	}
	return nil
}

// ErrBadHandshake rejects a connection whose first bytes are not an xtp
// handshake; wrapped errors carry the specifics.
var ErrBadHandshake = errors.New("wire: bad handshake")

// ErrVersionMismatch reports a peer speaking an xtp version this package
// does not: the handshake carries the peer's version so the caller can log
// it.
var ErrVersionMismatch = errors.New("wire: protocol version mismatch")

// WriteHandshake sends this side's 4-byte handshake.
func WriteHandshake(w io.Writer, version byte) error {
	_, err := w.Write([]byte{magic[0], magic[1], magic[2], version})
	return err
}

// ReadHandshake reads and validates the peer's handshake, returning the
// version it announced. A wrong magic is ErrBadHandshake; the caller
// decides whether the announced version is acceptable.
func ReadHandshake(r io.Reader) (byte, error) {
	var b [handshakeLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("%w: %w", ErrBadHandshake, err)
	}
	if b[0] != magic[0] || b[1] != magic[1] || b[2] != magic[2] {
		return 0, fmt.Errorf("%w: magic %q", ErrBadHandshake, b[:3])
	}
	return b[3], nil
}

// Frame is one decoded frame. Payload aliases the Reader's internal buffer
// and is valid only until the next ReadFrame; callers that dispatch
// asynchronously must decode (or copy) first.
type Frame struct {
	Type    FrameType
	Corr    uint64
	Payload []byte
}

// Reader decodes frames from a stream. It is not safe for concurrent use;
// a connection has exactly one reading goroutine.
type Reader struct {
	br  *bufio.Reader
	buf []byte // payload scratch, grown on demand, reused across frames
	n   int64  // bytes consumed off the wire (header + payload)
}

// NewReader wraps r for frame decoding.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 32<<10)}
}

// BytesRead reports the total wire bytes consumed so far (for metrics).
func (r *Reader) BytesRead() int64 { return r.n }

// ReadFrame reads the next frame. Frame.Payload is only valid until the
// next call. Errors are terminal for the stream: a malformed header or an
// oversized length prefix means framing sync is lost and the connection
// must close.
func (r *Reader) ReadFrame() (Frame, error) {
	t, err := r.br.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	r.n++
	corr, err := r.readUvarint()
	if err != nil {
		return Frame{}, fmt.Errorf("wire: read correlation id: %w", noEOF(err))
	}
	length, err := r.readUvarint()
	if err != nil {
		return Frame{}, fmt.Errorf("wire: read frame length: %w", noEOF(err))
	}
	if length > MaxFrame {
		return Frame{}, fmt.Errorf("wire: frame length %d exceeds limit %d", length, MaxFrame)
	}
	if uint64(cap(r.buf)) < length {
		r.buf = make([]byte, length)
	}
	payload := r.buf[:length]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: read %d-byte payload: %w", length, noEOF(err))
	}
	r.n += int64(length)
	return Frame{Type: FrameType(t), Corr: corr, Payload: payload}, nil
}

// readUvarint decodes one uvarint off the stream, counting its bytes.
func (r *Reader) readUvarint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := r.br.ReadByte()
		if err != nil {
			return 0, err
		}
		r.n++
		if shift == 63 && b > 1 {
			return 0, errors.New("uvarint overflows 64 bits")
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, errors.New("uvarint longer than 10 bytes")
}

// noEOF upgrades a mid-structure EOF to ErrUnexpectedEOF: a stream ending
// inside a frame is truncation, not a clean close.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Writer encodes frames onto a stream. It is not safe for concurrent use;
// callers serialize writes (one writing goroutine, or a mutex).
type Writer struct {
	bw *bufio.Writer
	n  int64
}

// NewWriter wraps w for frame encoding.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 32<<10)}
}

// BytesWritten reports the total wire bytes produced so far (for metrics).
func (w *Writer) BytesWritten() int64 { return w.n }

// WriteFrame encodes one frame and flushes it to the connection. Flushing
// per frame keeps latency flat for pipelined callers: a response is on the
// wire the moment its handler finishes, never parked behind an idle buffer.
func (w *Writer) WriteFrame(t FrameType, corr uint64, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [1 + 2*binary.MaxVarintLen64]byte
	hdr[0] = byte(t)
	n := 1 + binary.PutUvarint(hdr[1:], corr)
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	if _, err := w.bw.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.n += int64(n + len(payload))
	return nil
}

// bufPool recycles payload scratch buffers across encodes, so steady-state
// request framing allocates nothing.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf borrows an empty scratch buffer for encoding a payload.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a scratch buffer to the pool.
func PutBuf(b *[]byte) { bufPool.Put(b) }
