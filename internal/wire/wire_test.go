package wire

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strings"
	"testing"

	"xseed/api"
)

func TestHandshakeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, Version); err != nil {
		t.Fatal(err)
	}
	v, err := ReadHandshake(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v != Version {
		t.Fatalf("handshake version = %d, want %d", v, Version)
	}
}

func TestHandshakeRejectsWrongMagic(t *testing.T) {
	if _, err := ReadHandshake(strings.NewReader("HTTP")); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if _, err := ReadHandshake(strings.NewReader("XT")); err == nil {
		t.Fatal("truncated handshake accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	payloads := [][]byte{[]byte("hello"), nil, bytes.Repeat([]byte{0xab}, 100_000)}
	for i, p := range payloads {
		if err := w.WriteFrame(FrameEstimateReq, uint64(i*7+1), p); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, p := range payloads {
		f, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != FrameEstimateReq || f.Corr != uint64(i*7+1) || !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame %d: type=%v corr=%d len=%d", i, f.Type, f.Corr, len(f.Payload))
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("tail read err = %v, want EOF", err)
	}
	if r.BytesRead() != w.BytesWritten() {
		t.Fatalf("reader consumed %d bytes, writer produced %d", r.BytesRead(), w.BytesWritten())
	}
}

func TestFrameLengthLimit(t *testing.T) {
	// A length prefix over MaxFrame must error before any buffering.
	var buf bytes.Buffer
	buf.WriteByte(byte(FramePing))
	buf.WriteByte(0) // corr
	// uvarint(MaxFrame + 1)
	v := uint64(MaxFrame + 1)
	for v >= 0x80 {
		buf.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	buf.WriteByte(byte(v))
	if _, err := NewReader(&buf).ReadFrame(); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

func TestTruncatedFrameIsUnexpectedEOF(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(FrameEstimateResp, 3, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		r := NewReader(bytes.NewReader(whole[:cut]))
		if _, err := r.ReadFrame(); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded cleanly", cut, len(whole))
		}
	}
}

func TestEstimateReqRoundTrip(t *testing.T) {
	queries := []string{"/a/b", "//open_auction[bidder]/seller", ""}
	b := AppendEstimateReq(nil, "auction", queries, true)
	name, got, streaming, err := DecodeEstimateReq(b)
	if err != nil {
		t.Fatal(err)
	}
	if name != "auction" || !streaming || len(got) != 3 {
		t.Fatalf("decoded name=%q streaming=%v n=%d", name, streaming, len(got))
	}
	for i := range queries {
		if got[i] != queries[i] {
			t.Fatalf("query %d = %q, want %q", i, got[i], queries[i])
		}
	}
}

func TestEstimateRespRoundTrip(t *testing.T) {
	in := []api.EstimateItem{
		{Query: "/a/b", Estimate: 42.5, Cached: true},
		{Query: "/a//c", Estimate: math.Inf(1), Streamed: true},
		{Query: "/bad[", Error: api.NewParseError("parse error", 5, "[")},
		{Query: "", Estimate: 0},
	}
	b := AppendEstimateResp(nil, in)
	out, err := DecodeEstimateResp(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d items, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Query != b.Query || a.Estimate != b.Estimate || a.Cached != b.Cached || a.Streamed != b.Streamed {
			t.Fatalf("item %d: %+v -> %+v", i, a, b)
		}
	}
	// The parse error survives with its structural detail intact.
	d, ok := out[2].Error.ParseDetail()
	if !ok || d.Offset != 5 || d.Token != "[" {
		t.Fatalf("parse detail did not survive: %+v ok=%v", d, ok)
	}
}

func TestFeedbackRoundTrip(t *testing.T) {
	b := AppendFeedbackReq(nil, "auction", "/a/b", 17.25)
	name, query, actual, err := DecodeFeedbackReq(b)
	if err != nil {
		t.Fatal(err)
	}
	if name != "auction" || query != "/a/b" || actual != 17.25 {
		t.Fatalf("decoded %q %q %v", name, query, actual)
	}

	if ae, err := DecodeFeedbackAck(AppendFeedbackAck(nil, nil)); err != nil || ae != nil {
		t.Fatalf("success ack = %v, %v", ae, err)
	}
	in := api.Errorf(api.CodeNotFound, "no such synopsis")
	ae, err := DecodeFeedbackAck(AppendFeedbackAck(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if ae == nil || ae.Code != api.CodeNotFound || ae.Msg != in.Msg {
		t.Fatalf("error ack = %+v", ae)
	}
}

func TestFeedbackBatchRoundTrip(t *testing.T) {
	items := []api.FeedbackItem{{Query: "/a/b", Actual: 7}, {Query: "//c", Actual: 0.25}}
	name, got, err := DecodeFeedbackBatchReq(AppendFeedbackBatchReq(nil, "auction", items))
	if err != nil {
		t.Fatal(err)
	}
	if name != "auction" || len(got) != 2 || got[0] != items[0] || got[1] != items[1] {
		t.Fatalf("decoded %q %+v", name, got)
	}

	in := []*api.Error{nil, api.NewParseError("boom", 3, "["), nil}
	out, err := DecodeFeedbackBatchAck(AppendFeedbackBatchAck(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != nil || out[2] != nil {
		t.Fatalf("ack round trip: %+v", out)
	}
	if out[1] == nil || out[1].Code != api.CodeParseError || out[1].Msg != in[1].Msg {
		t.Fatalf("error item round trip: %+v", out[1])
	}
}

func TestErrorRoundTrip(t *testing.T) {
	in := &api.Error{Code: api.CodeCanceled, Msg: "context canceled",
		Detail: json.RawMessage(`{"requestId":"abc"}`)}
	out, err := DecodeError(AppendError(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Code != in.Code || out.Msg != in.Msg || string(out.Detail) != string(in.Detail) {
		t.Fatalf("error round trip: %+v -> %+v", in, out)
	}
}

// TestDecodersRejectTruncation walks every prefix of a valid payload
// through its decoder: all must error, none may panic.
func TestDecodersRejectTruncation(t *testing.T) {
	bodies := map[FrameType][]byte{
		FrameEstimateReq: AppendEstimateReq(nil, "s", []string{"/a", "/b"}, false),
		FrameEstimateResp: AppendEstimateResp(nil, []api.EstimateItem{
			{Query: "/a", Estimate: 1},
			{Query: "x", Error: api.Errorf(api.CodeParseError, "bad")},
		}),
		FrameFeedbackReq: AppendFeedbackReq(nil, "s", "/a", 2),
		FrameFeedbackAck: AppendFeedbackAck(nil, api.Errorf(api.CodeInternal, "boom")),
		FrameError:       AppendError(nil, api.Errorf(api.CodeConflict, "taken")),
		FrameFeedbackBatchReq: AppendFeedbackBatchReq(nil, "s",
			[]api.FeedbackItem{{Query: "/a", Actual: 1}, {Query: "/b", Actual: 2}}),
		FrameFeedbackBatchAck: AppendFeedbackBatchAck(nil,
			[]*api.Error{nil, api.Errorf(api.CodeParseError, "bad")}),
	}
	for _, fi := range Frames() {
		body, ok := bodies[fi.Type]
		if !ok {
			continue
		}
		if err := fi.Decode(body); err != nil {
			t.Fatalf("%s: valid body rejected: %v", fi.Name, err)
		}
		for cut := 0; cut < len(body); cut++ {
			if err := fi.Decode(body[:cut]); err == nil {
				t.Errorf("%s: %d/%d-byte truncation decoded cleanly", fi.Name, cut, len(body))
			}
		}
		// Trailing garbage is rejected too.
		if err := fi.Decode(append(append([]byte{}, body...), 0xff)); err == nil {
			t.Errorf("%s: trailing byte decoded cleanly", fi.Name)
		}
	}
}

// TestCountCannotOOM proves a hostile element count cannot drive an
// allocation: a tiny payload claiming 2^40 queries must fail fast.
func TestCountCannotOOM(t *testing.T) {
	var b []byte
	b = appendString(b, "s")
	b = append(b, 0) // flags
	v := uint64(1) << 40
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	b = append(b, byte(v))
	if _, _, _, err := DecodeEstimateReq(b); err == nil {
		t.Fatal("absurd query count accepted")
	}
}

func TestFrameNamesUnique(t *testing.T) {
	seenCode := map[FrameType]bool{}
	seenName := map[string]bool{}
	for _, fi := range Frames() {
		if seenCode[fi.Type] || seenName[fi.Name] {
			t.Fatalf("duplicate frame registration: %+v", fi)
		}
		if fi.Decode == nil {
			t.Fatalf("frame %s has no decoder", fi.Name)
		}
		seenCode[fi.Type], seenName[fi.Name] = true, true
	}
}

func BenchmarkEncodeEstimateReq(b *testing.B) {
	queries := []string{"/site/people/person", "//open_auction[bidder]/seller"}
	buf := GetBuf()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		*buf = AppendEstimateReq((*buf)[:0], "auction", queries, false)
	}
	PutBuf(buf)
}

func BenchmarkDecodeEstimateResp(b *testing.B) {
	body := AppendEstimateResp(nil, []api.EstimateItem{{Query: "/a/b", Estimate: 42}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEstimateResp(body); err != nil {
			b.Fatal(err)
		}
	}
}
