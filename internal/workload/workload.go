// Package workload generates the query workloads of the paper's Section
// 6.1: all simple path (SP) queries of a document, and seeded random
// branching (BP) and complex (CP) queries with a configurable maximum
// number of predicates per step (1 for BP/CP, 2 for 2BP/2CP, 3 for
// 3BP/3CP). Queries are drawn from the document's path tree so node tests
// always name real paths, and an optional non-triviality filter keeps only
// queries with at least one actual result, as the paper's randomly
// generated workloads are "non-trivial".
package workload

import (
	"math/rand"

	"xseed/internal/nok"
	"xseed/internal/pathtree"
	"xseed/internal/xpath"
)

// Query is one workload entry with its ground-truth cardinality.
type Query struct {
	Path   *xpath.Path
	Class  xpath.Class
	Actual int64
}

// Options configure random workload generation.
type Options struct {
	// N is the number of queries to generate (the paper uses 1,000 per
	// class).
	N int

	// MaxPredsPerStep bounds predicates attached to one step (1 = BP/CP,
	// 2 = 2BP/2CP, 3 = 3BP/3CP). Zero means 1.
	MaxPredsPerStep int

	// Seed drives generation; workloads are deterministic for a fixed
	// seed.
	Seed int64

	// RequireNonEmpty retries (up to a bounded number of attempts) until
	// the query has at least one actual result.
	RequireNonEmpty bool

	// PredProb is the probability a step receives predicates (default
	// 0.45).
	PredProb float64

	// DescProb is the probability a CP step uses the // axis (default
	// 0.35); WildProb the probability of a * node test (default 0.1).
	DescProb float64
	WildProb float64
}

func (o Options) maxPreds() int {
	if o.MaxPredsPerStep <= 0 {
		return 1
	}
	return o.MaxPredsPerStep
}

func (o Options) predProb() float64 {
	if o.PredProb == 0 {
		return 0.45
	}
	return o.PredProb
}

func (o Options) descProb() float64 {
	if o.DescProb == 0 {
		return 0.35
	}
	return o.DescProb
}

func (o Options) wildProb() float64 {
	if o.WildProb == 0 {
		return 0.1
	}
	return o.WildProb
}

// AllSimplePaths returns every rooted simple path of the document as an SP
// query with its exact cardinality (from the path tree; no evaluation
// needed). max bounds the count (0 = all), taking paths in preorder.
func AllSimplePaths(pt *pathtree.Tree, max int) []Query {
	var out []Query
	pt.Walk(func(n *pathtree.Node) {
		if max > 0 && len(out) >= max {
			return
		}
		q, err := xpath.Parse(n.PathString(pt.Dict()))
		if err != nil {
			return // cannot happen for path tree labels
		}
		out = append(out, Query{Path: q, Class: xpath.SimplePath, Actual: n.Card})
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Branching generates opt.N random branching path queries (child axes only,
// with predicates drawn from real sibling labels).
func Branching(pt *pathtree.Tree, ev *nok.Evaluator, opt Options) []Query {
	return generate(pt, ev, opt, false)
}

// Complex generates opt.N random complex path queries (descendant axes
// and/or wildcards, plus predicates).
func Complex(pt *pathtree.Tree, ev *nok.Evaluator, opt Options) []Query {
	return generate(pt, ev, opt, true)
}

func generate(pt *pathtree.Tree, ev *nok.Evaluator, opt Options, complex bool) []Query {
	rng := rand.New(rand.NewSource(opt.Seed))
	nodes := collectNodes(pt)
	if len(nodes) == 0 {
		return nil
	}
	var out []Query
	const maxAttemptsPerQuery = 64
	for len(out) < opt.N {
		var q *xpath.Path
		attempts := 0
		for {
			q = randomQuery(pt, rng, nodes, opt, complex)
			attempts++
			if q == nil {
				if attempts >= maxAttemptsPerQuery {
					break
				}
				continue
			}
			if complex && q.Classify() != xpath.ComplexPath {
				// Force at least one // or * so the class is honest.
				forceComplex(q, rng, opt)
			}
			if !opt.RequireNonEmpty || ev == nil {
				break
			}
			if ev.Count(q) > 0 || attempts >= maxAttemptsPerQuery {
				break
			}
		}
		if q == nil {
			break
		}
		actual := int64(0)
		if ev != nil {
			actual = ev.Count(q)
		}
		class := xpath.BranchingPath
		if complex {
			class = xpath.ComplexPath
		}
		out = append(out, Query{Path: q, Class: class, Actual: actual})
	}
	return out
}

// collectNodes gathers path tree nodes of depth >= 2 (so queries have at
// least two steps).
func collectNodes(pt *pathtree.Tree) []*pathtree.Node {
	var nodes []*pathtree.Node
	pt.Walk(func(n *pathtree.Node) {
		if n.Depth >= 2 {
			nodes = append(nodes, n)
		}
	})
	return nodes
}

// randomQuery builds a query whose main path follows root→target in the
// path tree, attaching sibling predicates, and (for complex queries)
// mutating axes and node tests.
func randomQuery(pt *pathtree.Tree, rng *rand.Rand, nodes []*pathtree.Node, opt Options, complex bool) *xpath.Path {
	target := nodes[rng.Intn(len(nodes))]
	chain := pathChain(target)
	q := &xpath.Path{}
	for i, node := range chain {
		st := xpath.Step{Axis: xpath.Child, Label: pt.Dict().Name(node.Label)}
		// Predicates: siblings of the next main-path node (children of this
		// node other than the continuation), only for interior steps.
		if i < len(chain)-1 && rng.Float64() < opt.predProb() {
			next := chain[i+1]
			var sibs []*pathtree.Node
			for _, c := range node.Children {
				if c != next {
					sibs = append(sibs, c)
				}
			}
			rng.Shuffle(len(sibs), func(a, b int) { sibs[a], sibs[b] = sibs[b], sibs[a] })
			nPreds := between(rng, 1, opt.maxPreds())
			for p := 0; p < nPreds && p < len(sibs); p++ {
				pred := &xpath.Path{Steps: []xpath.Step{{
					Axis: xpath.Child, Label: pt.Dict().Name(sibs[p].Label),
				}}}
				st.Preds = append(st.Preds, pred)
			}
		}
		q.Steps = append(q.Steps, st)
	}
	if len(q.Steps) < 2 {
		return nil
	}
	if complex {
		mutateComplex(q, rng, opt)
	}
	return q
}

// mutateComplex rewrites axes to // (dropping a random prefix of skipped
// steps to keep the query satisfiable) and node tests to *.
func mutateComplex(q *xpath.Path, rng *rand.Rand, opt Options) {
	// Convert some axes to descendant; a descendant step may absorb its
	// predecessors (e.g. /a/b/c -> //c or /a//c).
	steps := q.Steps
	var out []xpath.Step
	for i := 0; i < len(steps); i++ {
		st := steps[i]
		if rng.Float64() < opt.descProb() {
			st.Axis = xpath.Descendant
			// Absorb up to the previous step with probability ½, unless it
			// would empty the query.
			if len(out) > 0 && rng.Float64() < 0.5 {
				out = out[:len(out)-1]
			}
		}
		out = append(out, st)
	}
	for i := range out {
		if rng.Float64() < opt.wildProb() {
			// Wildcards only where the step keeps an anchor: avoid
			// //* chains on both the first and last step.
			if i != 0 && i != len(out)-1 {
				out[i].Wildcard = true
				out[i].Label = ""
			}
		}
	}
	q.Steps = out
}

// forceComplex guarantees at least one descendant axis (used when random
// mutation produced a plain branching query).
func forceComplex(q *xpath.Path, rng *rand.Rand, opt Options) {
	i := rng.Intn(len(q.Steps))
	q.Steps[i].Axis = xpath.Descendant
}

func between(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

func pathChain(n *pathtree.Node) []*pathtree.Node {
	var rev []*pathtree.Node
	for m := n; m != nil; m = m.Parent {
		rev = append(rev, m)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
