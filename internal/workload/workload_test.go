package workload

import (
	"testing"

	"xseed/internal/datagen"
	"xseed/internal/fixtures"
	"xseed/internal/nok"
	"xseed/internal/pathtree"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

func setup(t *testing.T, xml string) (*pathtree.Tree, *nok.Evaluator) {
	t.Helper()
	dict := xmldoc.NewDict()
	pb := pathtree.NewBuilder(dict)
	doc, err := xmldoc.Build(xmldoc.NewParserString(xml), dict, pb)
	if err != nil {
		t.Fatal(err)
	}
	return pb.Tree(), nok.New(doc)
}

func setupDataset(t *testing.T, name string) (*pathtree.Tree, *nok.Evaluator) {
	t.Helper()
	src, err := datagen.New(name, 0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	dict := xmldoc.NewDict()
	pb := pathtree.NewBuilder(dict)
	doc, err := xmldoc.Build(src, dict, pb)
	if err != nil {
		t.Fatal(err)
	}
	return pb.Tree(), nok.New(doc)
}

func TestAllSimplePathsFigure2(t *testing.T) {
	pt, ev := setup(t, fixtures.PaperFigure2)
	qs := AllSimplePaths(pt, 0)
	if len(qs) != 14 {
		t.Fatalf("SP count = %d, want 14", len(qs))
	}
	for _, q := range qs {
		if q.Class != xpath.SimplePath || !q.Path.IsSimple() {
			t.Errorf("%s is not SP", q.Path)
		}
		// Stored actual must match evaluation.
		if got := ev.Count(q.Path); got != q.Actual {
			t.Errorf("%s: stored %d, evaluated %d", q.Path, q.Actual, got)
		}
	}
	if got := AllSimplePaths(pt, 5); len(got) != 5 {
		t.Errorf("max=5 returned %d", len(got))
	}
}

func TestBranchingWorkload(t *testing.T) {
	pt, ev := setupDataset(t, datagen.NameDBLP)
	qs := Branching(pt, ev, Options{N: 50, Seed: 9, RequireNonEmpty: true})
	if len(qs) != 50 {
		t.Fatalf("generated %d queries, want 50", len(qs))
	}
	branching := 0
	for _, q := range qs {
		c := q.Path.Classify()
		if c == xpath.ComplexPath {
			t.Errorf("BP workload contains complex query %s", q.Path)
		}
		if c == xpath.BranchingPath {
			branching++
		}
		if q.Actual <= 0 {
			t.Errorf("trivial query %s (actual %d)", q.Path, q.Actual)
		}
		if got := q.Path.MaxPredsPerStep(); got > 1 {
			t.Errorf("%s has %d preds per step, max 1", q.Path, got)
		}
	}
	if branching < len(qs)/4 {
		t.Errorf("only %d/%d queries actually branch", branching, len(qs))
	}
}

func TestComplexWorkload(t *testing.T) {
	pt, ev := setupDataset(t, datagen.NameXMark)
	qs := Complex(pt, ev, Options{N: 50, Seed: 9, RequireNonEmpty: true})
	if len(qs) != 50 {
		t.Fatalf("generated %d queries, want 50", len(qs))
	}
	nonEmpty := 0
	for _, q := range qs {
		if q.Path.Classify() != xpath.ComplexPath {
			t.Errorf("CP workload contains %v query %s", q.Path.Classify(), q.Path)
		}
		if q.Actual > 0 {
			nonEmpty++
		}
	}
	// RequireNonEmpty is best effort (bounded retries), but the vast
	// majority must be non-trivial.
	if nonEmpty < len(qs)*8/10 {
		t.Errorf("only %d/%d non-empty", nonEmpty, len(qs))
	}
}

func TestMultiPredicateWorkloads(t *testing.T) {
	pt, ev := setupDataset(t, datagen.NameDBLP)
	qs := Branching(pt, ev, Options{N: 80, Seed: 3, MaxPredsPerStep: 2, PredProb: 0.9})
	max := 0
	for _, q := range qs {
		if m := q.Path.MaxPredsPerStep(); m > max {
			max = m
		}
	}
	if max != 2 {
		t.Errorf("2BP workload max preds = %d, want 2", max)
	}
	qs3 := Branching(pt, ev, Options{N: 80, Seed: 3, MaxPredsPerStep: 3, PredProb: 0.9})
	max = 0
	for _, q := range qs3 {
		if m := q.Path.MaxPredsPerStep(); m > max {
			max = m
		}
	}
	if max != 3 {
		t.Errorf("3BP workload max preds = %d, want 3", max)
	}
}

func TestDeterminism(t *testing.T) {
	pt, ev := setup(t, fixtures.PaperFigure2)
	a := Branching(pt, ev, Options{N: 20, Seed: 5})
	b := Branching(pt, ev, Options{N: 20, Seed: 5})
	for i := range a {
		if a[i].Path.String() != b[i].Path.String() {
			t.Fatalf("query %d differs: %s vs %s", i, a[i].Path, b[i].Path)
		}
	}
	c := Branching(pt, ev, Options{N: 20, Seed: 6})
	same := true
	for i := range a {
		if a[i].Path.String() != c[i].Path.String() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical workloads")
	}
}

func TestQueriesParseableAndEvaluable(t *testing.T) {
	pt, ev := setup(t, fixtures.PaperFigure2)
	for _, q := range Complex(pt, ev, Options{N: 40, Seed: 11}) {
		s := q.Path.String()
		if _, err := xpath.Parse(s); err != nil {
			t.Errorf("generated query %q does not re-parse: %v", s, err)
		}
	}
}
