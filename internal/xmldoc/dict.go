// Package xmldoc provides the XML document substrate shared by every other
// component: a label dictionary, a streaming open/close element event model,
// a succinct preorder-array document storage (our rendition of the NoK
// physical storage the paper builds on), an encoding/xml parsing adapter,
// and per-document structural statistics (the Table 2 columns).
package xmldoc

// LabelID is a dense integer identifier for an element label (tag name).
type LabelID = int32

// Dict interns element labels to dense LabelIDs. A single Dict is shared by
// all structures built from one document (storage, path tree, kernel,
// synopses) so label IDs are comparable across them.
type Dict struct {
	ids   map[string]LabelID
	names []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]LabelID)}
}

// Intern returns the LabelID for name, assigning the next dense ID on first
// sight.
func (d *Dict) Intern(name string) LabelID {
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := LabelID(len(d.names))
	d.ids[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the LabelID for name without interning. ok is false if the
// label has never been seen.
func (d *Dict) Lookup(name string) (id LabelID, ok bool) {
	id, ok = d.ids[name]
	return id, ok
}

// Name returns the label string for id. It panics on an out-of-range id,
// which indicates a caller bug (an id from a different dictionary).
func (d *Dict) Name(id LabelID) string { return d.names[id] }

// Len returns the number of distinct labels interned.
func (d *Dict) Len() int { return len(d.names) }

// Names returns the interned labels in ID order. The caller must not modify
// the returned slice.
func (d *Dict) Names() []string { return d.names }

// Clone returns an independent copy of the dictionary. Estimation snapshots
// freeze one per synopsis version so lock-free readers can resolve labels
// while a subtree update interns new ones into the live dictionary; IDs are
// identical across the copy (interning is append-only).
func (d *Dict) Clone() *Dict {
	c := &Dict{
		ids:   make(map[string]LabelID, len(d.ids)),
		names: make([]string, len(d.names)),
	}
	for k, v := range d.ids {
		c.ids[k] = v
	}
	copy(c.names, d.names)
	return c
}
