package xmldoc

import (
	"errors"
	"fmt"

	"xseed/internal/counterstack"
)

// NodeID identifies a node by its preorder position in the document.
// The document root element is node 0. The pseudo document root (the
// XPath "/" context above the root element) is represented by VirtualRoot.
type NodeID int32

// VirtualRoot is the pseudo node above the document root element used as the
// initial evaluation context for absolute path expressions.
const VirtualRoot NodeID = -1

// Document is a succinct read-only XML document: elements in preorder with,
// per node, the label and the subtree size (number of nodes in the subtree
// including the node itself). First-child / next-sibling / subtree-range
// navigation is O(1) arithmetic and evaluation algorithms reduce to forward
// scans over the arrays — the property the NoK storage scheme [Zhang et al.,
// ICDE 2004] provides and that the XSEED paper's evaluator relies on.
type Document struct {
	dict   *Dict
	labels []LabelID
	size   []int32

	stats Stats
}

// Stats summarizes document structure; these are the per-dataset columns of
// the paper's Table 2.
type Stats struct {
	Nodes       int64   // total element count
	MaxDepth    int     // deepest element (root = 1)
	AvgRecLevel float64 // mean over nodes of the node recursion level (Definition 1)
	MaxRecLevel int     // document recursion level (DRL)
	TextBytes   int64   // approximate serialized size ("<l>...</l>" per element)
}

// Dict returns the document's label dictionary.
func (d *Document) Dict() *Dict { return d.dict }

// NumNodes returns the number of elements.
func (d *Document) NumNodes() int { return len(d.labels) }

// Stats returns the document's structural statistics.
func (d *Document) Stats() Stats { return d.stats }

// Label returns the label of node n.
func (d *Document) Label(n NodeID) LabelID { return d.labels[n] }

// LabelName returns the label string of node n.
func (d *Document) LabelName(n NodeID) string { return d.dict.Name(d.labels[n]) }

// SubtreeSize returns the number of nodes in the subtree rooted at n,
// including n.
func (d *Document) SubtreeSize(n NodeID) int32 { return d.size[n] }

// SubtreeEnd returns the preorder position one past the last node of n's
// subtree; the subtree occupies [n, SubtreeEnd(n)).
func (d *Document) SubtreeEnd(n NodeID) NodeID { return n + NodeID(d.size[n]) }

// FirstChild returns n's first child, or -1 if n is a leaf. For the virtual
// root it returns the document root element.
func (d *Document) FirstChild(n NodeID) NodeID {
	if n == VirtualRoot {
		if len(d.labels) == 0 {
			return -1
		}
		return 0
	}
	if d.size[n] > 1 {
		return n + 1
	}
	return -1
}

// NextSibling returns the sibling following c under parent n, or -1.
func (d *Document) NextSibling(n, c NodeID) NodeID {
	next := c + NodeID(d.size[c])
	if n == VirtualRoot {
		return -1 // the root element has no siblings
	}
	if next < d.SubtreeEnd(n) {
		return next
	}
	return -1
}

// Builder is a Sink that constructs a Document and its statistics from an
// event stream.
type Builder struct {
	dict   *Dict
	labels []LabelID
	size   []int32
	open   []int32 // stack of open node positions

	cs        *counterstack.Stack[LabelID]
	recSum    int64
	maxRec    int
	maxDepth  int
	textBytes int64
	err       error
}

// NewBuilder returns a builder writing into a document that will use dict.
func NewBuilder(dict *Dict) *Builder {
	return &Builder{dict: dict, cs: counterstack.New[LabelID]()}
}

// OpenElement implements Sink.
func (b *Builder) OpenElement(label LabelID) {
	if b.err != nil {
		return
	}
	if len(b.open) == 0 && len(b.labels) > 0 {
		b.err = errors.New("xmldoc: multiple top-level elements")
		return
	}
	pos := int32(len(b.labels))
	b.labels = append(b.labels, label)
	b.size = append(b.size, 0)
	b.open = append(b.open, pos)
	b.cs.Push(label)
	if lvl := b.cs.Level(); lvl > 0 {
		b.recSum += int64(lvl)
		if lvl > b.maxRec {
			b.maxRec = lvl
		}
	}
	if depth := len(b.open); depth > b.maxDepth {
		b.maxDepth = depth
	}
	b.textBytes += int64(len(b.dict.Name(label)))*2 + 5
}

// CloseElement implements Sink.
func (b *Builder) CloseElement(label LabelID) {
	if b.err != nil {
		return
	}
	if len(b.open) == 0 {
		b.err = errors.New("xmldoc: close event with no open element")
		return
	}
	pos := b.open[len(b.open)-1]
	if b.labels[pos] != label {
		b.err = fmt.Errorf("xmldoc: close event for %q does not match open %q",
			b.dict.Name(label), b.dict.Name(b.labels[pos]))
		return
	}
	b.open = b.open[:len(b.open)-1]
	b.size[pos] = int32(len(b.labels)) - pos
	b.cs.Pop(label)
}

// Document finalizes and returns the built document.
func (b *Builder) Document() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.open) != 0 {
		return nil, fmt.Errorf("xmldoc: %d elements left open", len(b.open))
	}
	if len(b.labels) == 0 {
		return nil, errors.New("xmldoc: empty document")
	}
	d := &Document{dict: b.dict, labels: b.labels, size: b.size}
	d.stats = Stats{
		Nodes:       int64(len(b.labels)),
		MaxDepth:    b.maxDepth,
		AvgRecLevel: float64(b.recSum) / float64(len(b.labels)),
		MaxRecLevel: b.maxRec,
		TextBytes:   b.textBytes,
	}
	return d, nil
}

// Build constructs a Document from a source, interning labels into dict.
// Extra sinks receive the same event stream in the same pass (Figure 1 of
// the paper: one parse feeds storage, path tree, and kernel).
func Build(src Source, dict *Dict, extra ...Sink) (*Document, error) {
	b := NewBuilder(dict)
	var sink Sink = b
	if len(extra) > 0 {
		sink = MultiSink(append([]Sink{b}, extra...)...)
	}
	if err := src.Emit(dict, sink); err != nil {
		return nil, err
	}
	return b.Document()
}

// Events replays the document as an event stream, making a built Document
// usable as a Source (e.g., to construct a synopsis from an already-loaded
// document).
func (d *Document) Emit(dict *Dict, sink Sink) error {
	if dict != d.dict {
		// Re-intern through the target dictionary to keep the contract that
		// the stream's IDs belong to dict.
		var emit func(n NodeID)
		emit = func(n NodeID) {
			id := dict.Intern(d.dict.Name(d.labels[n]))
			sink.OpenElement(id)
			for c := d.FirstChild(n); c >= 0; c = d.NextSibling(n, c) {
				emit(c)
			}
			sink.CloseElement(id)
		}
		emit(0)
		return nil
	}
	// Fast path: same dictionary; iterative preorder walk over the arrays.
	type frame struct {
		node NodeID
		end  NodeID
	}
	var stack []frame
	n := NodeID(0)
	limit := NodeID(len(d.labels))
	for n < limit || len(stack) > 0 {
		for len(stack) > 0 && n >= stack[len(stack)-1].end {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sink.CloseElement(d.labels[top.node])
		}
		if n >= limit {
			continue
		}
		sink.OpenElement(d.labels[n])
		stack = append(stack, frame{n, d.SubtreeEnd(n)})
		n++
	}
	return nil
}
