package xmldoc

import (
	"bufio"
	"io"
)

// Sink consumes a stream of element open/close events. Well-formed streams
// open and close elements in properly nested order with exactly one
// top-level element. All label IDs refer to the Dict the stream was bound
// to.
type Sink interface {
	OpenElement(label LabelID)
	CloseElement(label LabelID)
}

// Source produces a document's event stream into a sink, interning labels
// into dict. Sources must be replayable: Emit may be called multiple times
// and must produce the identical stream each time (generators are seeded;
// parsers re-read their input).
type Source interface {
	Emit(dict *Dict, sink Sink) error
}

// multiSink fans one event stream out to several sinks in order.
type multiSink []Sink

func (m multiSink) OpenElement(label LabelID) {
	for _, s := range m {
		s.OpenElement(label)
	}
}

func (m multiSink) CloseElement(label LabelID) {
	for _, s := range m {
		s.CloseElement(label)
	}
}

// MultiSink returns a sink that forwards every event to each of sinks in
// order. This is how the paper's Figure 1 single-parse construction is
// realized: one pass feeds the document storage, the path tree, and the
// XSEED kernel simultaneously.
func MultiSink(sinks ...Sink) Sink {
	return multiSink(sinks)
}

// XMLWriter is a sink that serializes the event stream as XML text. It is
// used by the dataset generators to write document files for external tools
// and for measuring textual dataset size.
type XMLWriter struct {
	w    *bufio.Writer
	dict *Dict
	err  error
}

// NewXMLWriter returns a sink writing XML text to w using dict for label
// names. Call Flush when the stream is complete.
func NewXMLWriter(w io.Writer, dict *Dict) *XMLWriter {
	return &XMLWriter{w: bufio.NewWriterSize(w, 1<<16), dict: dict}
}

func (x *XMLWriter) OpenElement(label LabelID) {
	if x.err != nil {
		return
	}
	x.w.WriteByte('<')
	x.w.WriteString(x.dict.Name(label))
	_, x.err = x.w.Write([]byte{'>'})
}

func (x *XMLWriter) CloseElement(label LabelID) {
	if x.err != nil {
		return
	}
	x.w.WriteString("</")
	x.w.WriteString(x.dict.Name(label))
	_, x.err = x.w.Write([]byte{'>'})
}

// Flush flushes buffered output and reports the first error encountered.
func (x *XMLWriter) Flush() error {
	if x.err != nil {
		return x.err
	}
	return x.w.Flush()
}

// CountingSink counts events; useful for sizing streams without storing
// them.
type CountingSink struct {
	Opens  int64
	Closes int64
	// TextBytes approximates the serialized XML size of the stream:
	// "<name>" + "</name>" per element.
	TextBytes int64

	dict *Dict
}

// NewCountingSink returns a sink that tallies events. dict may be nil, in
// which case TextBytes stays zero.
func NewCountingSink(dict *Dict) *CountingSink { return &CountingSink{dict: dict} }

func (c *CountingSink) OpenElement(label LabelID) {
	c.Opens++
	if c.dict != nil {
		c.TextBytes += int64(len(c.dict.Name(label))) + 2
	}
}

func (c *CountingSink) CloseElement(label LabelID) {
	c.Closes++
	if c.dict != nil {
		c.TextBytes += int64(len(c.dict.Name(label))) + 3
	}
}
