package xmldoc

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"
)

// Parser is a Source that reads XML text with encoding/xml and emits element
// events. Character data, comments, processing instructions and directives
// are skipped; only element structure is retained, matching the paper's
// focus on structural constraints.
type Parser struct {
	// open returns a fresh reader over the XML text each time the source is
	// replayed.
	open func() (io.ReadCloser, error)

	// Attributes, when true, surfaces each attribute as a childless element
	// labeled "@name" under its owner element, so attribute-structure
	// queries can be expressed with the same path language.
	Attributes bool

	// Strict aborts on malformed XML when true (default); when false the
	// parser applies encoding/xml's lenient settings (AutoClose, permissive
	// entities), which real-world datasets such as DBLP need.
	Strict bool

	// Fragment permits multiple top-level elements. Document construction
	// still requires a single root, but fragment streams are valid input
	// for subtree-level synopsis updates.
	Fragment bool
}

// NewParserBytes returns a parser over an in-memory XML document.
func NewParserBytes(data []byte) *Parser {
	return &Parser{
		open: func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		},
		Strict: true,
	}
}

// NewParserString returns a parser over an XML string.
func NewParserString(data string) *Parser {
	return &Parser{
		open: func() (io.ReadCloser, error) {
			return io.NopCloser(strings.NewReader(data)), nil
		},
		Strict: true,
	}
}

// NewParserFile returns a parser that (re)opens the file at path on each
// emit.
func NewParserFile(path string) *Parser {
	return &Parser{
		open:   func() (io.ReadCloser, error) { return os.Open(path) },
		Strict: true,
	}
}

// Emit implements Source.
func (p *Parser) Emit(dict *Dict, sink Sink) error {
	r, err := p.open()
	if err != nil {
		return fmt.Errorf("xmldoc: open input: %w", err)
	}
	defer r.Close()

	dec := xml.NewDecoder(r)
	if !p.Strict {
		dec.Strict = false
		dec.AutoClose = xml.HTMLAutoClose
	}
	depth := 0
	seenRoot := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("xmldoc: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if depth == 0 && seenRoot && !p.Fragment {
				return fmt.Errorf("xmldoc: multiple root elements (second: %q)", t.Name.Local)
			}
			seenRoot = true
			depth++
			id := dict.Intern(t.Name.Local)
			sink.OpenElement(id)
			if p.Attributes {
				for _, a := range t.Attr {
					aid := dict.Intern("@" + a.Name.Local)
					sink.OpenElement(aid)
					sink.CloseElement(aid)
				}
			}
		case xml.EndElement:
			depth--
			sink.CloseElement(dict.Intern(t.Name.Local))
		}
	}
	if depth != 0 {
		return fmt.Errorf("xmldoc: unbalanced document (%d unclosed elements)", depth)
	}
	return nil
}

// Parse is a convenience wrapper: parse XML text into a Document with a
// fresh dictionary.
func Parse(data string) (*Document, error) {
	dict := NewDict()
	return Build(NewParserString(data), dict)
}
