package xmldoc

import (
	"bytes"
	"strings"
	"testing"

	"xseed/internal/fixtures"
)

// paperFig2 is the XML tree of the paper's Figure 2(a); see
// internal/fixtures for the derivation.
const paperFig2 = fixtures.PaperFigure2

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	d, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return d
}

func TestParseSimple(t *testing.T) {
	d := mustParse(t, "<a><b><c/></b><b/></a>")
	if got := d.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if got := d.LabelName(0); got != "a" {
		t.Errorf("root label = %q, want a", got)
	}
	if got := d.SubtreeSize(0); got != 4 {
		t.Errorf("SubtreeSize(root) = %d, want 4", got)
	}
	// children of root: positions 1 ("b" with child) and 3 ("b" leaf)
	c1 := d.FirstChild(0)
	if c1 != 1 || d.LabelName(c1) != "b" {
		t.Fatalf("FirstChild(root) = %d (%s), want 1 (b)", c1, d.LabelName(c1))
	}
	c2 := d.NextSibling(0, c1)
	if c2 != 3 || d.LabelName(c2) != "b" {
		t.Fatalf("NextSibling = %d, want 3", c2)
	}
	if got := d.NextSibling(0, c2); got != -1 {
		t.Errorf("NextSibling past last = %d, want -1", got)
	}
	if got := d.FirstChild(c2); got != -1 {
		t.Errorf("FirstChild(leaf) = %d, want -1", got)
	}
	if got := d.FirstChild(VirtualRoot); got != 0 {
		t.Errorf("FirstChild(VirtualRoot) = %d, want 0", got)
	}
	if got := d.NextSibling(VirtualRoot, 0); got != -1 {
		t.Errorf("root must have no siblings, got %d", got)
	}
}

func TestStatsOnPaperFigure2(t *testing.T) {
	d := mustParse(t, paperFig2)
	st := d.Stats()
	if st.Nodes != fixtures.PaperFigure2Nodes {
		t.Errorf("Nodes = %d, want %d", st.Nodes, fixtures.PaperFigure2Nodes)
	}
	// Deepest path is a/c/s/s/s/p: depth 6.
	if st.MaxDepth != 6 {
		t.Errorf("MaxDepth = %d, want 6", st.MaxDepth)
	}
	// Paths through nested s reach recursion level 2.
	if st.MaxRecLevel != 2 {
		t.Errorf("MaxRecLevel = %d, want 2", st.MaxRecLevel)
	}
	if st.AvgRecLevel <= 0 || st.AvgRecLevel >= 1 {
		t.Errorf("AvgRecLevel = %f, want in (0,1)", st.AvgRecLevel)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"unclosed", "<a><b></a>"},
		{"two roots", "<a/><b/>"},
		{"text only", "hello"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.in); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestAttributesOption(t *testing.T) {
	p := NewParserString(`<a id="1"><b href="x"/></a>`)
	p.Attributes = true
	dict := NewDict()
	d, err := Build(p, dict)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if d.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4 (a, @id, b, @href)", d.NumNodes())
	}
	if _, ok := dict.Lookup("@id"); !ok {
		t.Error("attribute label @id not interned")
	}
}

func TestDictIntern(t *testing.T) {
	d := NewDict()
	a := d.Intern("a")
	b := d.Intern("b")
	if a == b {
		t.Fatal("distinct labels share an id")
	}
	if got := d.Intern("a"); got != a {
		t.Errorf("re-intern changed id: %d != %d", got, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if d.Name(a) != "a" || d.Name(b) != "b" {
		t.Error("Name round-trip failed")
	}
	if _, ok := d.Lookup("zzz"); ok {
		t.Error("Lookup of unseen label reported ok")
	}
}

func TestDocumentEmitRoundTrip(t *testing.T) {
	d := mustParse(t, paperFig2)
	// Re-build a second document from the first one's event stream.
	dict2 := NewDict()
	d2, err := Build(d, dict2)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if d2.NumNodes() != d.NumNodes() {
		t.Fatalf("rebuild node count %d != %d", d2.NumNodes(), d.NumNodes())
	}
	for i := 0; i < d.NumNodes(); i++ {
		if d.LabelName(NodeID(i)) != d2.LabelName(NodeID(i)) {
			t.Fatalf("label mismatch at %d: %s != %s", i, d.LabelName(NodeID(i)), d2.LabelName(NodeID(i)))
		}
		if d.SubtreeSize(NodeID(i)) != d2.SubtreeSize(NodeID(i)) {
			t.Fatalf("size mismatch at %d", i)
		}
	}
	// Same-dictionary replay must also work (fast path).
	cs := NewCountingSink(d.Dict())
	if err := d.Emit(d.Dict(), cs); err != nil {
		t.Fatalf("same-dict emit: %v", err)
	}
	if cs.Opens != int64(d.NumNodes()) || cs.Closes != int64(d.NumNodes()) {
		t.Fatalf("emit counts: %d opens %d closes, want %d", cs.Opens, cs.Closes, d.NumNodes())
	}
}

func TestXMLWriterRoundTrip(t *testing.T) {
	d := mustParse(t, paperFig2)
	var buf bytes.Buffer
	w := NewXMLWriter(&buf, d.Dict())
	if err := d.Emit(d.Dict(), w); err != nil {
		t.Fatalf("emit: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	d2, err := Parse(buf.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if d2.NumNodes() != d.NumNodes() {
		t.Errorf("round-trip nodes %d != %d", d2.NumNodes(), d.NumNodes())
	}
}

func TestMultiSinkOrder(t *testing.T) {
	dict := NewDict()
	var events []string
	rec := func(tag string) Sink {
		return sinkFuncs{
			open:  func(l LabelID) { events = append(events, tag+"+"+dict.Name(l)) },
			close: func(l LabelID) { events = append(events, tag+"-"+dict.Name(l)) },
		}
	}
	ms := MultiSink(rec("A"), rec("B"))
	ms.OpenElement(dict.Intern("x"))
	ms.CloseElement(dict.Intern("x"))
	want := "A+x B+x A-x B-x"
	if got := strings.Join(events, " "); got != want {
		t.Errorf("event order = %q, want %q", got, want)
	}
}

type sinkFuncs struct {
	open, close func(LabelID)
}

func (s sinkFuncs) OpenElement(l LabelID)  { s.open(l) }
func (s sinkFuncs) CloseElement(l LabelID) { s.close(l) }

func TestBuilderMismatchedClose(t *testing.T) {
	b := NewBuilder(NewDict())
	dict := b.dict
	b.OpenElement(dict.Intern("a"))
	b.CloseElement(dict.Intern("b")) // mismatch
	if _, err := b.Document(); err == nil {
		t.Error("mismatched close not reported")
	}
}

func TestDeepDocument(t *testing.T) {
	// 1000-deep single-label chain: recursion level 999.
	var sb strings.Builder
	const depth = 1000
	for i := 0; i < depth; i++ {
		sb.WriteString("<x>")
	}
	for i := 0; i < depth; i++ {
		sb.WriteString("</x>")
	}
	d := mustParse(t, sb.String())
	st := d.Stats()
	if st.Nodes != depth {
		t.Errorf("Nodes = %d, want %d", st.Nodes, depth)
	}
	if st.MaxRecLevel != depth-1 {
		t.Errorf("MaxRecLevel = %d, want %d", st.MaxRecLevel, depth-1)
	}
	if st.MaxDepth != depth {
		t.Errorf("MaxDepth = %d, want %d", st.MaxDepth, depth)
	}
}
