package xpath

import (
	"fmt"
	"strings"
)

// ParseError describes a syntax error with its position in the input.
type ParseError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xpath: parse %q at offset %d: %s", e.Input, e.Pos, e.Msg)
}

// Parse parses an absolute path expression such as
//
//	/site/regions//item[shipping]/location
//	//s//s[t]/p
//	/a/*[b/c][.//d]/e
//
// The grammar is:
//
//	path    := ('/' | '//') step (('/' | '//') step)*
//	step    := ('*' | name) pred*
//	pred    := '[' relpath ']'
//	relpath := ['.//' | '//'] step (('/' | '//') step)*
//
// Inside predicates the leading axis defaults to child; a leading ".//" (or
// "//", accepted as a convenience) selects the descendant axis.
func Parse(input string) (*Path, error) {
	p := &parser{in: input}
	path, err := p.parsePath(false)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.in) {
		return nil, p.errf("unexpected %q", p.in[p.pos:])
	}
	if len(path.Steps) == 0 {
		return nil, p.errf("empty path")
	}
	return path, nil
}

// MustParse is Parse that panics on error, for tests and fixed queries.
func MustParse(input string) *Path {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	in  string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Input: p.in, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.in) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.in[p.pos]
}

// axis consumes '/' or '//' and reports which; ok is false if neither is
// present.
func (p *parser) axis() (Axis, bool) {
	if p.eof() || p.in[p.pos] != '/' {
		return Child, false
	}
	p.pos++
	if !p.eof() && p.in[p.pos] == '/' {
		p.pos++
		return Descendant, true
	}
	return Child, true
}

func isNameByte(b byte) bool {
	return b == '_' || b == '-' || b == '.' || b == ':' || b == '@' ||
		'a' <= b && b <= 'z' || 'A' <= b && b <= 'Z' || '0' <= b && b <= '9'
}

func (p *parser) name() (string, error) {
	start := p.pos
	for !p.eof() && isNameByte(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected name or *")
	}
	return p.in[start:p.pos], nil
}

func (p *parser) parseStep(axis Axis) (Step, error) {
	st := Step{Axis: axis}
	if p.peek() == '*' {
		p.pos++
		st.Wildcard = true
	} else {
		n, err := p.name()
		if err != nil {
			return st, err
		}
		st.Label = n
	}
	for p.peek() == '[' {
		p.pos++
		pred, err := p.parsePath(true)
		if err != nil {
			return st, err
		}
		if len(pred.Steps) == 0 {
			return st, p.errf("empty predicate")
		}
		if p.peek() != ']' {
			return st, p.errf("expected ]")
		}
		p.pos++
		st.Preds = append(st.Preds, pred)
	}
	return st, nil
}

// parsePath parses a path; relative paths (predicate bodies) allow an
// implicit leading child axis.
func (p *parser) parsePath(relative bool) (*Path, error) {
	path := &Path{}
	first := true
	for {
		var ax Axis
		if first && relative {
			// Optional ".//" or "//" prefix selects descendant; "./" is
			// accepted as an explicit child prefix; otherwise the axis is
			// implicit child and the step begins immediately.
			switch {
			case strings.HasPrefix(p.in[p.pos:], ".//"):
				p.pos += 3
				ax = Descendant
			case strings.HasPrefix(p.in[p.pos:], "//"):
				p.pos += 2
				ax = Descendant
			case strings.HasPrefix(p.in[p.pos:], "./"):
				p.pos += 2
				ax = Child
			default:
				ax = Child
			}
		} else {
			var ok bool
			ax, ok = p.axis()
			if !ok {
				return path, nil
			}
		}
		st, err := p.parseStep(ax)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, st)
		first = false
	}
}
