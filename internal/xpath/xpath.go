// Package xpath implements the path expression subset of the XSEED paper:
// absolute paths over child (/) and descendant-or-self-based descendant (//)
// axes, name and wildcard (*) node tests, and nested structural predicates
// ([...]). Queries are classified into the paper's three workload classes —
// simple paths (SP), branching paths (BP), and complex paths (CP) — and the
// query recursion level (QRL, Definition 2) is computable.
package xpath

import (
	"strings"
)

// Axis is a location step axis.
type Axis uint8

const (
	// Child is the XPath child:: axis, written "/".
	Child Axis = iota
	// Descendant is the descendant axis, written "//".
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Step is one location step: an axis, a node test, and zero or more
// structural predicates (each a relative path).
type Step struct {
	Axis     Axis
	Label    string // node test; ignored when Wildcard
	Wildcard bool
	Preds    []*Path // relative predicate paths
}

// Matches reports whether the step's node test accepts a label.
func (s *Step) Matches(label string) bool {
	return s.Wildcard || s.Label == label
}

// Path is a parsed path expression: a sequence of steps. An absolute path's
// first step applies from the virtual document root; a predicate path is
// relative to its context node (its first step's axis still distinguishes
// [c] from [.//c]).
type Path struct {
	Steps []Step
}

// Class is the paper's workload classification of a query.
type Class uint8

const (
	// SimplePath: linear, /-axes only (SP).
	SimplePath Class = iota
	// BranchingPath: predicates, but /-axes only (BP).
	BranchingPath
	// ComplexPath: contains //-axes and/or wildcards (CP).
	ComplexPath
)

func (c Class) String() string {
	switch c {
	case SimplePath:
		return "SP"
	case BranchingPath:
		return "BP"
	default:
		return "CP"
	}
}

// Classify returns the query's workload class.
func (p *Path) Classify() Class {
	simpleAxes, hasPreds := true, false
	var scan func(q *Path)
	scan = func(q *Path) {
		for i := range q.Steps {
			s := &q.Steps[i]
			if s.Axis == Descendant || s.Wildcard {
				simpleAxes = false
			}
			if len(s.Preds) > 0 {
				hasPreds = true
			}
			for _, pr := range s.Preds {
				scan(pr)
			}
		}
	}
	scan(p)
	switch {
	case simpleAxes && !hasPreds:
		return SimplePath
	case simpleAxes:
		return BranchingPath
	default:
		return ComplexPath
	}
}

// IsSimple reports whether the path is a simple path (SP).
func (p *Path) IsSimple() bool { return p.Classify() == SimplePath }

// Labels returns the node test labels of a simple path. It panics if the
// path is not simple; callers must check IsSimple first.
func (p *Path) Labels() []string {
	if !p.IsSimple() {
		panic("xpath: Labels on non-simple path")
	}
	out := make([]string, len(p.Steps))
	for i := range p.Steps {
		out[i] = p.Steps[i].Label
	}
	return out
}

// MaxPredsPerStep returns the maximum number of predicates attached to any
// single step, at any nesting depth (the paper's kBP/kCP workload
// parameter).
func (p *Path) MaxPredsPerStep() int {
	max := 0
	var scan func(q *Path)
	scan = func(q *Path) {
		for i := range q.Steps {
			s := &q.Steps[i]
			if len(s.Preds) > max {
				max = len(s.Preds)
			}
			for _, pr := range s.Preds {
				scan(pr)
			}
		}
	}
	scan(p)
	return max
}

// QRL returns the query recursion level (Definition 2): the maximum, over
// rooted paths in the query tree, of (occurrences of the same node test with
// //-axis along the path) - 1, never negative. Wildcard //-steps count
// together under one pseudo-test, which makes //*//* recursive as the paper
// requires.
func (p *Path) QRL() int {
	max := 0
	counts := map[string]int{}
	var walk func(q *Path, idx int)
	walk = func(q *Path, idx int) {
		if idx >= len(q.Steps) {
			return
		}
		s := &q.Steps[idx]
		key := ""
		if s.Axis == Descendant {
			if s.Wildcard {
				key = "*"
			} else {
				key = s.Label
			}
			counts[key]++
			if counts[key]-1 > max {
				max = counts[key] - 1
			}
			// A //-wildcard can stand for any label, so it extends every
			// label's chain as well.
			if s.Wildcard {
				for k, v := range counts {
					if k != "*" && v > max {
						// counts[k] existing occurrences + this wildcard
						max = v
					}
				}
			}
		}
		for _, pr := range s.Preds {
			walk(pr, 0)
		}
		walk(q, idx+1)
		if key != "" {
			counts[key]--
		}
	}
	walk(p, 0)
	return max
}

// IsRecursive reports whether the query is recursive (QRL > 0).
func (p *Path) IsRecursive() bool { return p.QRL() > 0 }

// NumSteps returns the number of steps on the main path (predicates not
// counted).
func (p *Path) NumSteps() int { return len(p.Steps) }

// String renders the path in the concrete syntax accepted by Parse.
func (p *Path) String() string {
	var sb strings.Builder
	p.write(&sb, false)
	return sb.String()
}

func (p *Path) write(sb *strings.Builder, relative bool) {
	for i := range p.Steps {
		s := &p.Steps[i]
		if i == 0 && relative {
			// Inside a predicate, a leading child axis is implicit and a
			// leading descendant axis is written ".//".
			if s.Axis == Descendant {
				sb.WriteString(".//")
			}
		} else {
			sb.WriteString(s.Axis.String())
		}
		if s.Wildcard {
			sb.WriteByte('*')
		} else {
			sb.WriteString(s.Label)
		}
		for _, pr := range s.Preds {
			sb.WriteByte('[')
			pr.write(sb, true)
			sb.WriteByte(']')
		}
	}
}

// Clone returns a deep copy of the path.
func (p *Path) Clone() *Path {
	q := &Path{Steps: make([]Step, len(p.Steps))}
	for i := range p.Steps {
		s := p.Steps[i]
		cp := Step{Axis: s.Axis, Label: s.Label, Wildcard: s.Wildcard}
		for _, pr := range s.Preds {
			cp.Preds = append(cp.Preds, pr.Clone())
		}
		q.Steps[i] = cp
	}
	return q
}
