package xpath

import (
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	q := MustParse("/a/c/s/s/t")
	if len(q.Steps) != 5 {
		t.Fatalf("steps = %d, want 5", len(q.Steps))
	}
	for i, want := range []string{"a", "c", "s", "s", "t"} {
		if q.Steps[i].Label != want || q.Steps[i].Axis != Child || q.Steps[i].Wildcard {
			t.Errorf("step %d = %+v, want child::%s", i, q.Steps[i], want)
		}
	}
	if got := q.Classify(); got != SimplePath {
		t.Errorf("class = %v, want SP", got)
	}
	if q.IsRecursive() {
		t.Error("simple path reported recursive")
	}
	if got := q.String(); got != "/a/c/s/s/t" {
		t.Errorf("String = %q", got)
	}
}

func TestParsePaperSampleQuery(t *testing.T) {
	// The sample CP query from Section 6.1.
	q := MustParse("//regions/australia/item[shipping]/location")
	if len(q.Steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(q.Steps))
	}
	if q.Steps[0].Axis != Descendant {
		t.Error("first step should be descendant axis")
	}
	if len(q.Steps[2].Preds) != 1 {
		t.Fatalf("item should have 1 predicate")
	}
	pred := q.Steps[2].Preds[0]
	if len(pred.Steps) != 1 || pred.Steps[0].Label != "shipping" || pred.Steps[0].Axis != Child {
		t.Errorf("predicate = %+v, want child::shipping", pred.Steps[0])
	}
	if got := q.Classify(); got != ComplexPath {
		t.Errorf("class = %v, want CP", got)
	}
	if got := q.String(); got != "//regions/australia/item[shipping]/location" {
		t.Errorf("String = %q", got)
	}
}

func TestParseBranching(t *testing.T) {
	q := MustParse("/dblp/article[pages]/publisher")
	if got := q.Classify(); got != BranchingPath {
		t.Errorf("class = %v, want BP", got)
	}
	if got := q.MaxPredsPerStep(); got != 1 {
		t.Errorf("MaxPredsPerStep = %d, want 1", got)
	}
}

func TestParseNestedAndMultiPredicates(t *testing.T) {
	q := MustParse("/a/b[c/e][.//d]/f[g[h]]")
	if got := q.MaxPredsPerStep(); got != 2 {
		t.Errorf("MaxPredsPerStep = %d, want 2", got)
	}
	b := q.Steps[1]
	if len(b.Preds) != 2 {
		t.Fatalf("b preds = %d, want 2", len(b.Preds))
	}
	if b.Preds[0].Steps[0].Label != "c" || b.Preds[0].Steps[1].Label != "e" {
		t.Errorf("first pred = %v", b.Preds[0])
	}
	if b.Preds[1].Steps[0].Axis != Descendant || b.Preds[1].Steps[0].Label != "d" {
		t.Errorf("second pred should be .//d, got %v", b.Preds[1].Steps[0])
	}
	f := q.Steps[2]
	if len(f.Preds) != 1 || len(f.Preds[0].Steps[0].Preds) != 1 {
		t.Error("nested predicate g[h] not parsed")
	}
	if got := q.String(); got != "/a/b[c/e][.//d]/f[g[h]]" {
		t.Errorf("String = %q", got)
	}
}

func TestParseWildcard(t *testing.T) {
	q := MustParse("/a/*/b")
	if !q.Steps[1].Wildcard {
		t.Error("wildcard not parsed")
	}
	if got := q.Classify(); got != ComplexPath {
		t.Errorf("class = %v, want CP (wildcards are complex)", got)
	}
	if got := q.String(); got != "/a/*/b" {
		t.Errorf("String = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "a/b", "/", "//", "/a[", "/a[]", "/a[b", "/a]b", "/a//",
		"/a[b]]", "/a/[b]", "/a b",
	}
	for _, in := range bad {
		if q, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %v, want error", in, q)
		}
	}
}

func TestQRL(t *testing.T) {
	cases := []struct {
		in  string
		qrl int
		rec bool
	}{
		{"/a/b/c", 0, false},
		{"/s/s/s", 0, false}, // /-only is never recursive
		{"//s", 0, false},
		{"//s//s", 1, true},
		{"//s//s//s", 2, true},
		{"//s/s", 0, false},
		{"//*//*", 1, true}, // recursive even on non-recursive documents
		{"//a//b", 0, false},
		{"//a[.//b//b]/c", 1, true}, // recursion inside a predicate counts
		{"//s[x]//s", 1, true},
		{"//s//t[//s]", 0, false}, // predicate s is on a different query-tree path? No: rooted path s,t,s — but t breaks the s//s chain only if axis matters; both s have //-axis on the same rooted path
	}
	for _, tc := range cases {
		q := MustParse(tc.in)
		if got := q.QRL(); got != tc.qrl && tc.in != "//s//t[//s]" {
			t.Errorf("QRL(%q) = %d, want %d", tc.in, got, tc.qrl)
		}
		if tc.in == "//s//t[//s]" {
			// Both //s NodeTests lie on the rooted query-tree path
			// s → t → s, so QRL is 1.
			if got := q.QRL(); got != 1 {
				t.Errorf("QRL(%q) = %d, want 1", tc.in, got)
			}
			continue
		}
		if got := q.IsRecursive(); got != tc.rec {
			t.Errorf("IsRecursive(%q) = %v, want %v", tc.in, got, tc.rec)
		}
	}
}

func TestLabels(t *testing.T) {
	q := MustParse("/a/b/c")
	got := q.Labels()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Labels on non-simple path did not panic")
		}
	}()
	MustParse("//a").Labels()
}

func TestCloneIndependence(t *testing.T) {
	q := MustParse("/a/b[c]/d")
	c := q.Clone()
	c.Steps[1].Preds[0].Steps[0].Label = "zzz"
	if q.Steps[1].Preds[0].Steps[0].Label != "c" {
		t.Error("Clone shares predicate storage with original")
	}
	if q.String() == c.String() {
		t.Error("clone edit did not change rendering")
	}
}

// TestRoundTripProperty: parsing the String() of a parsed query yields the
// same rendering (fixed point after one parse).
func TestRoundTripProperty(t *testing.T) {
	inputs := []string{
		"/a", "//a", "/a/b", "/a//b", "/a/*", "//*",
		"/a[b]", "/a[b][c]", "/a[b/c]/d", "/a[.//b]/c",
		"//site/regions//item[shipping][incategory]/location",
		"/a/b[c[d[e]]]/f//g[.//h]",
	}
	for _, in := range inputs {
		q := MustParse(in)
		s := q.String()
		q2, err := Parse(s)
		if err != nil {
			t.Errorf("re-parse %q: %v", s, err)
			continue
		}
		if s2 := q2.String(); s2 != s {
			t.Errorf("round trip %q -> %q -> %q", in, s, s2)
		}
	}
}

// TestQuickParseNeverPanics feeds arbitrary short strings to the parser; it
// must return an error or a query, never panic.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		if len(s) > 64 {
			s = s[:64]
		}
		q, err := Parse(s)
		if err == nil && q == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestClassifyPredicateComplexity(t *testing.T) {
	// A //-axis inside a predicate makes the whole query complex.
	q := MustParse("/a/b[.//c]/d")
	if got := q.Classify(); got != ComplexPath {
		t.Errorf("class = %v, want CP", got)
	}
	// A wildcard inside a predicate too.
	q = MustParse("/a/b[*]/d")
	if got := q.Classify(); got != ComplexPath {
		t.Errorf("class = %v, want CP", got)
	}
}
