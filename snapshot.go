package xseed

import (
	"sync/atomic"

	"xseed/internal/estimate"
)

// Snapshot is an immutable, versioned estimation view of a Synopsis: the
// kernel as of one mutation generation, the frozen label dictionary, the
// hyper-edge lookup view, and the expanded path tree (built lazily, once,
// under a singleflight). Estimating against a snapshot takes no locks and
// never observes a concurrent mutation — mutations publish a successor
// snapshot instead of changing this one.
//
// Pin a snapshot once per batch for a consistent view across its queries:
//
//	sn := syn.Snapshot()
//	for _, q := range queries {
//		est := sn.EstimateQuery(q)
//	}
//
// The version increases by exactly one per estimate-affecting mutation, so
// serving layers can tag cached results with it and let a concurrent
// mutation retire the whole scope by publishing the next version.
type Snapshot struct {
	ver uint64
	es  *estimate.Snapshot
}

// Snapshot returns the synopsis's current estimation snapshot. It is one
// atomic load; the result stays valid (and consistent) indefinitely.
func (s *Synopsis) Snapshot() *Snapshot { return s.snap.Load() }

// Version is the snapshot's mutation generation, starting at 1 for a
// freshly built or loaded synopsis.
func (sn *Snapshot) Version() uint64 { return sn.ver }

// EstimateQuery estimates a pre-parsed query against the snapshot.
func (sn *Snapshot) EstimateQuery(q *Query) float64 {
	return estimate.Compile(q.p, sn.es.Dict()).Run(sn.es)
}

// Estimate parses and estimates against the snapshot.
func (sn *Snapshot) Estimate(query string) (float64, error) {
	q, err := ParseQuery(query)
	if err != nil {
		return 0, err
	}
	return sn.EstimateQuery(q), nil
}

// EstimateStreamingQuery estimates with the single-pass streaming matcher
// where the query shape allows, falling back to the standard matcher; the
// streamed flag reports which path ran (the contract of
// Synopsis.EstimateStreamingQuery).
func (sn *Snapshot) EstimateStreamingQuery(q *Query) (est float64, streamed bool) {
	if v, ok := sn.es.StreamEstimate(q.p); ok {
		return v, true
	}
	return sn.EstimateQuery(q), false
}

// EPTStats reports the size of the snapshot's expanded path tree (building
// it if no estimate has yet).
func (sn *Snapshot) EPTStats() (nodes int, truncated bool) {
	st := sn.es.Stats()
	return st.Nodes, st.Truncated
}

// Compile compiles the query into a Plan against this snapshot's
// dictionary: label IDs resolved, hyper-edge pattern hashes precomputed,
// predicate shapes classified — once. Running the plan skips all of that
// per estimate, and the plan stays valid across later snapshots until a
// subtree update interns a new label (it then transparently recompiles on
// first use).
func (sn *Snapshot) Compile(q *Query) *Plan {
	p := &Plan{q: q, norm: q.String()}
	p.ep.Store(estimate.Compile(q.p, sn.es.Dict()))
	return p
}

// Plan is a compiled query: the parsed form, its normalized rendering, and
// the label-resolved execution plan. Plans are safe for concurrent Run
// calls and are what the serving layer caches so repeat queries skip
// parse + compile entirely.
type Plan struct {
	q    *Query
	norm string
	ep   atomic.Pointer[estimate.Plan]
}

// Query returns the parsed query the plan was compiled from.
func (p *Plan) Query() *Query { return p.q }

// String returns the normalized (parsed and re-rendered) query text — the
// estimate-cache key form.
func (p *Plan) String() string { return p.norm }

// CompatibleWith reports whether the compiled label resolution is current
// for sn; false after a subtree update interned new labels. Run handles the
// recompile itself — this exists for cache layers that want to refresh
// their stored plan.
func (p *Plan) CompatibleWith(sn *Snapshot) bool {
	if ep := p.ep.Load(); ep != nil {
		return ep.CompatibleWith(sn.es)
	}
	return false
}

// plan returns a compiled form current for sn, recompiling (and caching the
// result) when the snapshot's dictionary outgrew the stored one.
func (p *Plan) plan(sn *Snapshot) *estimate.Plan {
	if ep := p.ep.Load(); ep != nil && ep.CompatibleWith(sn.es) {
		return ep
	}
	ep := estimate.Compile(p.q.p, sn.es.Dict())
	p.ep.Store(ep)
	return ep
}

// Run estimates the compiled query against the snapshot.
func (p *Plan) Run(sn *Snapshot) float64 {
	return p.plan(sn).Run(sn.es)
}

// RunStreaming estimates with the streaming matcher where possible (the
// plan's parsed query avoids a re-parse), falling back to the compiled
// standard plan.
func (p *Plan) RunStreaming(sn *Snapshot) (est float64, streamed bool) {
	if v, ok := sn.es.StreamEstimate(p.q.p); ok {
		return v, true
	}
	return p.Run(sn), false
}
