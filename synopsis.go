package xseed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"xseed/internal/estimate"
	"xseed/internal/het"
	"xseed/internal/kernel"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

// Config controls synopsis construction. The zero value (or a nil *Config)
// builds a kernel with a 1BP hyper-edge table under the paper's default
// settings.
type Config struct {
	// HET enables the hyper-edge table layer. Nil means Default1BP.
	HET *HETConfig

	// CardThreshold prunes estimator traversal of expanded-path-tree nodes
	// whose estimated cardinality is at or below it. The paper uses 0 for
	// ordinary documents and 20 for the highly recursive Treebank.
	CardThreshold float64

	// MaxEPTNodes caps the expanded path tree (safety bound; 0 = 1<<20).
	MaxEPTNodes int

	// ReuseEPT is retained for stream compatibility and for the low-level
	// estimate.Estimator (where off — the default — regenerates the EPT per
	// query, as the paper's traveler does). Synopsis estimates no longer
	// consult it: every published estimation snapshot builds its expanded
	// path tree at most once (lazily, on first estimate) and retains it
	// until the next mutation publishes a successor, regardless of this
	// flag — that per-version caching is what makes the lock-free read
	// path CPU-bound.
	ReuseEPT bool
}

// HETConfig controls hyper-edge table pre-computation and budget.
type HETConfig struct {
	// Disable skips HET construction entirely (bare kernel).
	Disable bool

	// FeedbackOnly starts from an empty table populated exclusively by
	// Feedback calls (no pre-computation pass over the document).
	FeedbackOnly bool

	// MBP is the maximum branching predicates per pattern (1 is the
	// paper's recommended tradeoff; 2-3 cost combinatorially more).
	MBP int

	// BselThreshold limits branching-candidate enumeration (paper: 0.1
	// default, 0.001 for Treebank). 0 means 0.1.
	BselThreshold float64

	// BudgetBytes bounds the resident HET size (<= 0: unlimited).
	BudgetBytes int

	// MaxCandidatesPerNode caps pattern enumeration per path tree node
	// (0 = unlimited).
	MaxCandidatesPerNode int
}

// Default1BP is the paper's recommended HET setting.
func Default1BP() *HETConfig { return &HETConfig{MBP: 1} }

// Synopsis is an XSEED synopsis: kernel plus optional hyper-edge table.
//
// Concurrency: the read path is lock-free. Estimate, EstimateQuery,
// EstimateStreaming, Snapshot, and plan runs are safe to call concurrently
// with each other AND with any single mutator — every estimate runs against
// an immutable estimation snapshot (kernel view + expanded path tree +
// hyper-edge lookup view) published through an atomic pointer, so a reader
// never blocks on a writer and never observes a half-applied mutation.
// Mutating calls — Feedback, ApplyHETDelta, AddSubtree, RemoveSubtree,
// SetBudget — build and publish a successor snapshot before returning; they
// are not safe to run concurrently with EACH OTHER and must be serialized
// externally (e.g. a plain Mutex, or the per-entry write lock
// xseed/internal/server holds), but estimates in flight during a mutation
// simply keep reading the snapshot they pinned.
//
// Consistency: an estimate reflects some published snapshot — the one
// current when the caller pinned it. After Feedback returns, the next
// Snapshot (or estimate) call observes the absorbed feedback; concurrent
// readers that pinned earlier may still answer from the predecessor. That
// is the whole "eventually consistent estimate after feedback" contract:
// values are never torn or interpolated, they are exactly the estimate some
// version produced. The size accessors (SizeBytes, HETEntries, ...) read
// the live table and kernel and therefore still need the external
// serialization against mutators that WriteTo always needed.
//
// Timing: a budget handed to SetBudget is a target, not an invariant — the
// serving layer's rebalancer computes fleet-wide targets first and applies
// them per synopsis afterwards, under only that synopsis's lock, so after a
// fleet-level budget change each SetBudget lands eventually rather than
// before the change returns. Within one synopsis the calls are still
// strictly ordered by its lock, which is what keeps persisted budget deltas
// replaying in apply order.
type Synopsis struct {
	kern *kernel.Kernel
	tab  *het.Table
	opt  estimate.Options

	// snap is the current estimation snapshot. Mutators replace the kernel
	// copy-on-write (subtree updates) or mutate the HET table in place and
	// then publish a successor wrapping a fresh het.View; the expanded path
	// tree inside each snapshot builds lazily under a singleflight, so a
	// feedback storm pays one EPT construction per *estimated* version, not
	// per mutation.
	snap atomic.Pointer[Snapshot]

	// replaying suspends snapshot publication and kernel copy-on-write
	// inside Replay — recovery-only, see Replay.
	replaying bool
}

// Replay runs fn — a single-threaded burst of mutations, such as a
// recovery delta-log replay — with snapshot publication suspended and
// subtree updates applied to the kernel in place, then publishes exactly
// one successor snapshot covering everything fn applied. Without it a
// 10k-record log replay would build 10k hyper-edge views (and clone the
// kernel per subtree record) for snapshots no reader can ever pin,
// regressing the store's O(delta) recovery to O(records × synopsis).
//
// Replay is NOT safe once the synopsis is visible to concurrent readers:
// it exists for the window before serving starts, where the caller owns
// the synopsis exclusively.
func (s *Synopsis) Replay(fn func() error) error {
	s.replaying = true
	err := fn()
	s.replaying = false
	s.publish()
	return err
}

// publish installs a new estimation snapshot reflecting the current kernel
// and hyper-edge table. Callers are the construction paths and the
// externally-serialized mutators, so at most one publish runs at a time;
// version numbers therefore increase by exactly one per mutation.
func (s *Synopsis) publish() *Snapshot {
	if s.replaying {
		return s.snap.Load()
	}
	ver := uint64(1)
	if old := s.snap.Load(); old != nil {
		ver = old.ver + 1
	}
	opt := s.opt
	opt.HET = nil
	if s.tab != nil {
		opt.HET = s.tab.View()
	}
	var es *estimate.Snapshot
	if old := s.snap.Load(); old != nil && old.es.Kernel() == s.kern &&
		old.es.Dict().Len() == s.kern.Dict().Len() {
		// Kernel untouched and no labels interned since (feedback, budget
		// change): the frozen dictionary and label hashes are still
		// authoritative — skip re-cloning them. The length check matters
		// after Replay, which mutates the kernel in place: same pointer,
		// possibly new labels.
		es = old.es.WithOptions(opt)
	} else {
		es = estimate.NewSnapshot(s.kern, s.kern.Dict().Clone(), opt)
	}
	sn := &Snapshot{ver: ver, es: es}
	s.snap.Store(sn)
	return sn
}

// BuildSynopsis constructs a synopsis for the document. cfg may be nil for
// defaults (kernel + 1BP HET, unlimited budget).
func BuildSynopsis(d *Document, cfg *Config) (*Synopsis, error) {
	if cfg == nil {
		cfg = &Config{}
	}
	hcfg := cfg.HET
	if hcfg == nil {
		hcfg = Default1BP()
	}
	opt := estimate.Options{
		CardThreshold: cfg.CardThreshold,
		MaxEPTNodes:   cfg.MaxEPTNodes,
		ReuseEPT:      cfg.ReuseEPT,
	}
	s := &Synopsis{kern: d.kern, opt: opt}
	switch {
	case hcfg.Disable:
		// bare kernel
	case hcfg.FeedbackOnly:
		s.tab = het.New(hcfg.BudgetBytes)
	default:
		tab, _ := het.Precompute(d.doc, d.pt, d.kern, het.PrecomputeOptions{
			MBP:                  hcfg.MBP,
			BselThreshold:        hcfg.BselThreshold,
			MaxCandidatesPerNode: hcfg.MaxCandidatesPerNode,
			Budget:               hcfg.BudgetBytes,
			EstimateOptions:      opt,
		})
		s.tab = tab
	}
	s.publish()
	return s, nil
}

// KernelOnly builds a synopsis with no HET (the paper's "XSEED kernel"
// configuration in Table 3).
func KernelOnly(d *Document, cfg *Config) (*Synopsis, error) {
	c := Config{}
	if cfg != nil {
		c = *cfg
	}
	c.HET = &HETConfig{Disable: true}
	return BuildSynopsis(d, &c)
}

// Estimate returns the estimated cardinality of the query.
func (s *Synopsis) Estimate(query string) (float64, error) {
	return s.Snapshot().Estimate(query)
}

// EstimateQuery estimates a pre-parsed query.
func (s *Synopsis) EstimateQuery(q *Query) float64 { return s.Snapshot().EstimateQuery(q) }

// EstimateStreaming estimates with the single-pass, bounded-memory matcher
// that consumes the traveler's event stream directly (the execution style
// of the paper's Algorithm 3). Queries whose predicates are not single
// child-axis name steps fall back to the standard matcher; the streamed
// flag reports which path ran.
func (s *Synopsis) EstimateStreaming(query string) (est float64, streamed bool, err error) {
	q, err := ParseQuery(query)
	if err != nil {
		return 0, false, err
	}
	est, streamed = s.Snapshot().EstimateStreamingQuery(q)
	return est, streamed, nil
}

// EstimateStreamingQuery is EstimateStreaming for a pre-parsed query.
func (s *Synopsis) EstimateStreamingQuery(q *Query) (est float64, streamed bool) {
	return s.Snapshot().EstimateStreamingQuery(q)
}

// SizeBytes returns the synopsis memory footprint: kernel plus resident
// HET entries.
func (s *Synopsis) SizeBytes() int {
	n := s.kern.SizeBytes()
	if s.tab != nil {
		n += s.tab.SizeBytes()
	}
	return n
}

// KernelSizeBytes returns the kernel's size alone.
func (s *Synopsis) KernelSizeBytes() int { return s.kern.SizeBytes() }

// HETSizeBytes returns the resident hyper-edge table size (0 without HET).
func (s *Synopsis) HETSizeBytes() int {
	if s.tab == nil {
		return 0
	}
	return s.tab.SizeBytes()
}

// HETEntries returns (resident, total) hyper-edge counts.
func (s *Synopsis) HETEntries() (resident, total int) {
	if s.tab == nil {
		return 0, 0
	}
	return s.tab.NumResident(), s.tab.NumEntries()
}

// SetBudget adapts the synopsis to a total memory budget in bytes: the
// kernel is fixed; the hyper-edge table keeps its highest-error entries in
// the remainder (the paper's dynamic reconfiguration). A budget at or below
// the kernel size empties the resident HET; a negative budget removes the
// bound entirely (every entry resident), which is how the serving layer
// lifts a previously-imposed fleet budget.
func (s *Synopsis) SetBudget(totalBytes int) {
	if s.tab == nil {
		return
	}
	if totalBytes < 0 {
		s.tab.SetBudget(0) // het treats <=0 as unlimited
		s.publish()
		return
	}
	rest := totalBytes - s.kern.SizeBytes()
	if rest < 1 {
		rest = 1 // 1 byte admits nothing (0 would mean unlimited)
	}
	s.tab.SetBudget(rest)
	s.publish()
}

// Feedback records an executed query's actual cardinality into the HET
// (self-tuning; paper Figure 1). It is a no-op on kernel-only synopses.
func (s *Synopsis) Feedback(query string, actual float64) error {
	q, err := xpath.Parse(query)
	if err != nil {
		return err
	}
	s.FeedbackQuery(&Query{p: q}, actual)
	return nil
}

// FeedbackQuery is Feedback for a pre-parsed query. It returns the estimate
// the synopsis produced before absorbing the feedback (0 without an HET), so
// servers tracking accuracy don't have to pay for a second estimate.
func (s *Synopsis) FeedbackQuery(q *Query, actual float64) (estBefore float64) {
	estBefore, _, _ = s.FeedbackQueryDelta(q, actual)
	return estBefore
}

// HETDelta is the persistable effect of one feedback call on the hyper-edge
// table: re-applying it with ApplyHETDelta reproduces the table mutation
// without re-running estimation, which is what makes O(delta) durability
// possible (internal/store appends these to a log instead of rewriting the
// synopsis).
type HETDelta struct {
	Hash    uint32  `json:"hash"`
	Pattern bool    `json:"pattern,omitempty"`
	Card    float64 `json:"card"`
	Bsel    float64 `json:"bsel,omitempty"`
	BselOK  bool    `json:"bselOK,omitempty"`
	Err     float64 `json:"err,omitempty"`
}

// FeedbackQueryDelta is FeedbackQuery exposing the HET mutation it caused.
// applied is false when the synopsis has no HET or the query shape is one
// the HET ignores (nothing changed; cached estimates stay valid).
func (s *Synopsis) FeedbackQueryDelta(q *Query, actual float64) (estBefore float64, delta HETDelta, applied bool) {
	estBefore, delta, applied = s.FeedbackQueryDeltaDeferred(q, actual)
	if applied {
		s.publish()
	}
	return estBefore, delta, applied
}

// FeedbackQueryDeltaDeferred is FeedbackQueryDelta without the snapshot
// publication: the HET mutates but readers keep estimating against the
// previous snapshot until the caller invokes Publish. It exists for batched
// feedback — applying N deltas and publishing once amortizes the
// O(resident) view copy each publication pays — and shares FeedbackQuery's
// external-serialization contract for mutators.
func (s *Synopsis) FeedbackQueryDeltaDeferred(q *Query, actual float64) (estBefore float64, delta HETDelta, applied bool) {
	if s.tab == nil {
		return 0, HETDelta{}, false
	}
	// The before-estimate runs against the current snapshot — the same value
	// any concurrent reader gets until the successor is published.
	sn := s.Snapshot()
	estBefore = sn.EstimateQuery(q)
	base := 0.0
	if !q.p.IsSimple() {
		base = sn.EstimateQuery(&Query{p: het.StripPreds(q.p)})
	}
	e, applied := s.tab.Feedback(q.p, actual, estBefore, base)
	if !applied {
		return estBefore, HETDelta{}, false
	}
	return estBefore, HETDelta{
		Hash:    e.Hash,
		Pattern: e.Pattern,
		Card:    e.Card,
		Bsel:    e.Bsel,
		BselOK:  e.BselOK,
		Err:     e.Err,
	}, true
}

// Publish installs one successor snapshot covering every deferred mutation
// applied since the last publication (see FeedbackQueryDeltaDeferred). Like
// all mutators it must be externally serialized.
func (s *Synopsis) Publish() { s.publish() }

// ApplyHETDelta re-applies a recorded feedback delta (log replay during
// recovery). It is idempotent: the entry upserts by (hash, kind). A no-op on
// kernel-only synopses.
func (s *Synopsis) ApplyHETDelta(d HETDelta) {
	if s.tab == nil {
		return
	}
	s.tab.Add(het.Entry{
		Hash:    d.Hash,
		Pattern: d.Pattern,
		Card:    d.Card,
		Bsel:    d.Bsel,
		BselOK:  d.BselOK,
		Err:     d.Err,
	})
	s.publish()
}

// HasHET reports whether the synopsis carries a hyper-edge table (even one
// whose resident set is currently empty under a tight budget).
func (s *Synopsis) HasHET() bool { return s.tab != nil }

// AddSubtree incrementally maintains the kernel after inserting the XML
// subtree(s) in xml under the element path contextPath (labels from the
// root, e.g. ["dblp"]). Estimates reflect the update immediately; the HET
// keeps its recorded actuals (the paper's lazy maintenance — rebuild or
// re-feedback to refresh them).
//
// The kernel is updated copy-on-write: readers pinned to the previous
// snapshot keep traversing the pre-update graph, and a parse failure leaves
// the kernel, hyper-edge table, and published snapshot unchanged (labels
// interned from the rejected fragment before the parse error may remain in
// the shared dictionary — harmless to estimates, which resolve against each
// snapshot's frozen clone).
func (s *Synopsis) AddSubtree(contextPath []string, xml string) error {
	return s.updateSubtree(contextPath, xml, true)
}

// RemoveSubtree incrementally maintains the kernel after deleting the XML
// subtree(s) in xml from under contextPath (copy-on-write, like AddSubtree).
func (s *Synopsis) RemoveSubtree(contextPath []string, xml string) error {
	return s.updateSubtree(contextPath, xml, false)
}

func (s *Synopsis) updateSubtree(contextPath []string, xml string, add bool) error {
	p := xmldoc.NewParserString(xml)
	p.Fragment = true
	kern := s.kern
	if !s.replaying {
		// Copy-on-write for live mutations; during Replay no reader can
		// hold a snapshot, so the kernel mutates in place (O(delta)).
		kern = kern.Clone()
	}
	var err error
	if add {
		err = kern.AddSubtree(contextPath, p)
	} else {
		err = kern.RemoveSubtree(contextPath, p)
	}
	if err != nil {
		return err
	}
	s.kern = kern
	s.publish()
	return nil
}

// EPTStats reports the size of the expanded path tree of the current
// snapshot (the paper's Section 6.4 metric), building it if no estimate has
// run yet.
func (s *Synopsis) EPTStats() (nodes int, truncated bool) {
	return s.Snapshot().EPTStats()
}

// KernelString renders the kernel's edges in the paper's notation, for
// debugging.
func (s *Synopsis) KernelString() string { return s.kern.String() }

// Synopsis stream format. Version 1 (the seed format) had no header of its
// own: the stream began directly with the kernel's "XSK1" magic, so the
// format could never evolve without breaking every reader. Version 2 prefixes
// a 5-byte header — magic "XSNP" plus a version byte — ahead of the same
// body. ReadSynopsis still accepts v1 streams (it sniffs the kernel magic),
// so snapshots written by older builds keep loading byte-for-byte.
var synMagic = [4]byte{'X', 'S', 'N', 'P'}

// SnapshotVersion is the synopsis stream version WriteTo emits.
const SnapshotVersion = 2

// WriteTo serializes the synopsis (kernel and full HET) in the current
// versioned stream format. It implements io.WriterTo.
func (s *Synopsis) WriteTo(w io.Writer) (int64, error) {
	var total int64
	hn, err := w.Write(append(synMagic[:], SnapshotVersion))
	total += int64(hn)
	if err != nil {
		return total, err
	}
	n, err := s.kern.WriteTo(w)
	total += n
	if err != nil {
		return total, err
	}
	var flag [1]byte
	if s.tab != nil {
		flag[0] = 1
	}
	m, err := w.Write(flag[:])
	total += int64(m)
	if err != nil {
		return total, err
	}
	if s.tab != nil {
		n, err = s.tab.WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
	}
	var opts [17]byte
	binary.LittleEndian.PutUint64(opts[0:], uint64(int64(s.opt.CardThreshold*1e6)))
	binary.LittleEndian.PutUint64(opts[8:], uint64(int64(s.opt.MaxEPTNodes)))
	if s.opt.ReuseEPT {
		opts[16] = 1
	}
	m, err = w.Write(opts[:])
	total += int64(m)
	return total, err
}

// ReadSynopsis deserializes a synopsis written by WriteTo: the current
// versioned stream, or a bare v1 stream from a pre-versioning build.
func ReadSynopsis(r io.Reader) (*Synopsis, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("xseed: synopsis header: %w", err)
	}
	if [4]byte(head) == synMagic {
		var hdr [5]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("xseed: synopsis header: %w", err)
		}
		if v := hdr[4]; v != SnapshotVersion {
			return nil, fmt.Errorf("xseed: unsupported synopsis format version %d (this build reads v1 and v%d)", v, SnapshotVersion)
		}
	}
	// Anything else falls through to the kernel reader: a v1 stream starts
	// with the kernel magic "XSK1" and loads unchanged; garbage fails there
	// with its usual "bad magic" error.
	dict := xmldoc.NewDict()
	k, err := kernel.Read(br, dict)
	if err != nil {
		return nil, err
	}
	var flag [1]byte
	if _, err := io.ReadFull(br, flag[:]); err != nil {
		return nil, fmt.Errorf("xseed: synopsis flags: %w", err)
	}
	s := &Synopsis{kern: k}
	if flag[0] == 1 {
		tab, err := het.Read(br)
		if err != nil {
			return nil, err
		}
		s.tab = tab
	}
	var opts [17]byte
	if _, err := io.ReadFull(br, opts[:]); err != nil {
		return nil, fmt.Errorf("xseed: synopsis options: %w", err)
	}
	s.opt.CardThreshold = float64(int64(binary.LittleEndian.Uint64(opts[0:]))) / 1e6
	s.opt.MaxEPTNodes = int(int64(binary.LittleEndian.Uint64(opts[8:])))
	s.opt.ReuseEPT = opts[16] == 1
	s.publish()
	return s, nil
}
