package xseed

import (
	"errors"

	"xseed/internal/treesketch"
	"xseed/internal/xpath"
)

// TreeSketch is the comparison synopsis of Polyzotis, Garofalakis and
// Ioannidis (SIGMOD 2004), reimplemented as the paper's baseline:
// count-stable partition refinement compressed to a memory budget by greedy
// merging. See internal/treesketch for fidelity notes.
type TreeSketch struct {
	syn *treesketch.Synopsis
}

// TreeSketchInfo reports construction effort.
type TreeSketchInfo struct {
	RefinePasses   int
	StableClusters int
	FinalClusters  int
	Merges         int
	DNF            bool // construction exceeded its operation budget
}

// ErrTreeSketchDNF is returned when TreeSketch construction exceeds its
// operation budget — the behaviour the paper reports as "DNF" on Treebank.
var ErrTreeSketchDNF = errors.New("xseed: TreeSketch construction did not finish within the operation budget")

// TreeSketchOptions configure construction; the zero value uses defaults.
type TreeSketchOptions struct {
	// OpBudget bounds construction work; 0 means 1<<30 elementary
	// operations.
	OpBudget int64
	// Seed drives merge-candidate sampling.
	Seed int64
}

// BuildTreeSketch constructs a TreeSketch synopsis of the document within
// the byte budget.
func BuildTreeSketch(d *Document, budgetBytes int, opts ...TreeSketchOptions) (*TreeSketch, TreeSketchInfo, error) {
	var o TreeSketchOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	syn, stats, err := treesketch.Build(d.doc, treesketch.Options{
		BudgetBytes: budgetBytes,
		OpBudget:    o.OpBudget,
		Seed:        o.Seed,
	})
	info := TreeSketchInfo{
		RefinePasses:   stats.RefinePasses,
		StableClusters: stats.StableClusters,
		FinalClusters:  stats.FinalClusters,
		Merges:         stats.Merges,
		DNF:            stats.DNF,
	}
	if err != nil {
		if errors.Is(err, treesketch.ErrDNF) {
			return nil, info, ErrTreeSketchDNF
		}
		return nil, info, err
	}
	return &TreeSketch{syn: syn}, info, nil
}

// Estimate returns the estimated cardinality of the query.
func (t *TreeSketch) Estimate(query string) (float64, error) {
	q, err := xpath.Parse(query)
	if err != nil {
		return 0, err
	}
	return t.syn.Estimate(q), nil
}

// EstimateQuery estimates a pre-parsed query.
func (t *TreeSketch) EstimateQuery(q *Query) float64 { return t.syn.Estimate(q.p) }

// SizeBytes returns the synopsis size.
func (t *TreeSketch) SizeBytes() int { return t.syn.SizeBytes() }

// CardinalityEstimator is the common interface of the XSEED synopsis and
// the TreeSketch baseline.
type CardinalityEstimator interface {
	Estimate(query string) (float64, error)
	EstimateQuery(q *Query) float64
	SizeBytes() int
}

var (
	_ CardinalityEstimator = (*Synopsis)(nil)
	_ CardinalityEstimator = (*TreeSketch)(nil)
)
