// Package xseed is a Go implementation of XSEED — the XML synopsis for
// accurate and fast XPath cardinality estimation of Zhang, Özsu, Aboulnaga
// and Ilyas (ICDE 2006).
//
// XSEED summarizes an XML document into a two-layer synopsis:
//
//   - a kernel — an edge-labeled label-split graph, usually a few KB, that
//     captures the document's structure including recursion levels; and
//   - an optional hyper-edge table (HET) — actual cardinalities of simple
//     paths and correlated backward selectivities of branching patterns,
//     ranked by estimation error and resident up to a memory budget.
//
// A cost-based optimizer asks the synopsis for the estimated cardinality of
// a path query (/, //, *, and structural predicates [...]); the synopsis
// unfolds the kernel into an expanded path tree and matches the query twig
// against it. Estimates typically cost well under 2% of actual query
// evaluation.
//
// Basic usage:
//
//	doc, _ := xseed.ParseXMLString("<a><b/><b><c/></b></a>")
//	syn, _ := xseed.BuildSynopsis(doc, nil)
//	est, _ := syn.Estimate("/a/b[c]")
//	act, _ := doc.Count("/a/b[c]")
//
// The package also provides exact evaluation over a succinct document
// storage (Count), synthetic dataset generation mirroring the paper's
// experiments (Generate), incremental synopsis maintenance under document
// updates, query-feedback self-tuning, and a TreeSketch baseline for
// comparison.
package xseed

import (
	"fmt"
	"io"
	"os"
	"strings"

	"xseed/internal/datagen"
	"xseed/internal/het"
	"xseed/internal/kernel"
	"xseed/internal/nok"
	"xseed/internal/pathtree"
	"xseed/internal/workload"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

// Document is a loaded XML document: the succinct storage used for exact
// evaluation, the path tree, and the XSEED kernel, all built in a single
// parse pass.
type Document struct {
	doc  *xmldoc.Document
	pt   *pathtree.Tree
	kern *kernel.Kernel
	ev   *nok.Evaluator
}

// Stats summarizes document structure (the paper's Table 2 columns).
type Stats struct {
	Nodes       int64   // element count
	MaxDepth    int     // deepest element (root = 1)
	AvgRecLevel float64 // mean node recursion level
	MaxRecLevel int     // document recursion level (DRL)
	TextBytes   int64   // approximate serialized size
	Labels      int     // distinct element labels
	PathCount   int     // distinct rooted label paths
}

// ParseXML loads a document from XML text on r.
func ParseXML(r io.Reader) (*Document, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xseed: read input: %w", err)
	}
	return build(xmldoc.NewParserBytes(data))
}

// ParseXMLString loads a document from an XML string.
func ParseXMLString(s string) (*Document, error) {
	return build(xmldoc.NewParserString(s))
}

// LoadFile loads a document from an XML file.
func LoadFile(path string) (*Document, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("xseed: %w", err)
	}
	return build(xmldoc.NewParserFile(path))
}

// Generate produces one of the built-in synthetic datasets modeled on the
// paper's experimental data: "dblp", "xmark", "treebank", "swissprot",
// "tpch", "nasa", or "xbench". Factor 1.0 approximates the full-size
// dataset (DBLP ≈ 4M elements); the paper's XMark10 is factor 0.1 of xmark,
// Treebank.05 is factor 0.05 of treebank. Generation is deterministic in
// (name, factor, seed).
func Generate(name string, factor float64, seed int64) (*Document, error) {
	src, err := datagen.New(name, factor, seed)
	if err != nil {
		return nil, err
	}
	return build(src)
}

// Datasets lists the dataset names Generate accepts.
func Datasets() []string { return datagen.Names() }

func build(src xmldoc.Source) (*Document, error) {
	dict := xmldoc.NewDict()
	kb := kernel.NewBuilder(dict)
	pb := pathtree.NewBuilder(dict)
	doc, err := xmldoc.Build(src, dict, kb, pb)
	if err != nil {
		return nil, err
	}
	k, err := kb.Kernel()
	if err != nil {
		return nil, err
	}
	return &Document{doc: doc, pt: pb.Tree(), kern: k, ev: nok.New(doc)}, nil
}

// Stats returns the document's structural statistics.
func (d *Document) Stats() Stats {
	st := d.doc.Stats()
	return Stats{
		Nodes:       st.Nodes,
		MaxDepth:    st.MaxDepth,
		AvgRecLevel: st.AvgRecLevel,
		MaxRecLevel: st.MaxRecLevel,
		TextBytes:   st.TextBytes,
		Labels:      d.doc.Dict().Len(),
		PathCount:   d.pt.NumNodes(),
	}
}

// NumNodes returns the number of elements.
func (d *Document) NumNodes() int { return d.doc.NumNodes() }

// Count evaluates the query exactly against the document (a full storage
// scan, not an estimate) and returns the result cardinality.
func (d *Document) Count(query string) (int64, error) {
	q, err := xpath.Parse(query)
	if err != nil {
		return 0, err
	}
	return d.ev.Count(q), nil
}

// CountQuery is Count for a pre-parsed query.
func (d *Document) CountQuery(q *Query) int64 { return d.ev.Count(q.p) }

// WriteXML serializes the document as XML text.
func (d *Document) WriteXML(w io.Writer) error {
	xw := xmldoc.NewXMLWriter(w, d.doc.Dict())
	if err := d.doc.Emit(d.doc.Dict(), xw); err != nil {
		return err
	}
	return xw.Flush()
}

// SimplePathQueries returns the document's rooted simple paths as queries
// with exact cardinalities attached — the paper's SP workload. max bounds
// the count (0 = all).
func (d *Document) SimplePathQueries(max int) []*Query {
	qs := workload.AllSimplePaths(d.pt, max)
	out := make([]*Query, len(qs))
	for i := range qs {
		out[i] = &Query{p: qs[i].Path, actual: qs[i].Actual, hasActual: true}
	}
	return out
}

// RandomWorkload generates n random queries of the given class ("BP" for
// branching, "CP" for complex), with at most maxPreds predicates per step
// (the paper's 1BP/2BP/3BP knob); generation is deterministic in seed.
// Queries are filtered to be non-trivial (at least one actual result) on a
// best-effort basis, and each carries its exact cardinality.
func (d *Document) RandomWorkload(class string, n int, maxPreds int, seed int64) ([]*Query, error) {
	return d.RandomWorkloadOpts(class, WorkloadOptions{N: n, MaxPredsPerStep: maxPreds, Seed: seed})
}

// WorkloadOptions tune RandomWorkloadOpts beyond the basic knobs.
type WorkloadOptions struct {
	// N is the number of queries to generate.
	N int

	// MaxPredsPerStep bounds predicates attached to one step (the paper's
	// 1BP/2BP/3BP knob). Zero means 1.
	MaxPredsPerStep int

	// PredProb is the probability a step receives predicates (0 = the
	// generator default of 0.45).
	PredProb float64

	// Seed drives generation; workloads are deterministic for a fixed seed.
	Seed int64

	// AllowEmpty keeps queries with zero actual results; by default
	// generation retries (boundedly) until each query is non-trivial.
	AllowEmpty bool
}

// RandomWorkloadOpts is RandomWorkload with the full option set.
func (d *Document) RandomWorkloadOpts(class string, o WorkloadOptions) ([]*Query, error) {
	opt := workload.Options{
		N:               o.N,
		MaxPredsPerStep: o.MaxPredsPerStep,
		PredProb:        o.PredProb,
		Seed:            o.Seed,
		RequireNonEmpty: !o.AllowEmpty,
	}
	var qs []workload.Query
	switch strings.ToUpper(class) {
	case "BP":
		qs = workload.Branching(d.pt, d.ev, opt)
	case "CP":
		qs = workload.Complex(d.pt, d.ev, opt)
	default:
		return nil, fmt.Errorf("xseed: unknown workload class %q (want BP or CP)", class)
	}
	out := make([]*Query, len(qs))
	for i := range qs {
		out[i] = &Query{p: qs[i].Path, actual: qs[i].Actual, hasActual: true}
	}
	return out, nil
}

// Query is a parsed path expression.
type Query struct {
	p         *xpath.Path
	actual    int64
	hasActual bool
}

// ParseQuery parses an absolute path expression such as
// //regions/australia/item[shipping]/location.
func ParseQuery(s string) (*Query, error) {
	p, err := xpath.Parse(s)
	if err != nil {
		return nil, err
	}
	return &Query{p: p}, nil
}

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(s string) *Query {
	q, err := ParseQuery(s)
	if err != nil {
		panic(err)
	}
	return q
}

// String renders the query.
func (q *Query) String() string { return q.p.String() }

// Class returns the paper's workload class: "SP", "BP", or "CP".
func (q *Query) Class() string { return q.p.Classify().String() }

// IsRecursive reports whether the query is recursive (Definition 2).
func (q *Query) IsRecursive() bool { return q.p.IsRecursive() }

// Actual returns the exact cardinality recorded at workload-generation
// time; ok is false if the query did not come from a workload generator.
func (q *Query) Actual() (card int64, ok bool) { return q.actual, q.hasActual }

// WithoutPredicates returns a copy of the query with every predicate
// removed — the base path whose cardinality an optimizer observes from the
// scan operator underneath a twig.
func (q *Query) WithoutPredicates() *Query {
	return &Query{p: het.StripPreds(q.p)}
}
