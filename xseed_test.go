package xseed

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xseed/internal/fixtures"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func fig2Doc(t *testing.T) *Document {
	t.Helper()
	d, err := ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseAndStats(t *testing.T) {
	d := fig2Doc(t)
	st := d.Stats()
	if st.Nodes != fixtures.PaperFigure2Nodes {
		t.Errorf("Nodes = %d", st.Nodes)
	}
	if st.MaxRecLevel != 2 || st.Labels != 6 || st.PathCount != 14 {
		t.Errorf("stats = %+v", st)
	}
	if d.NumNodes() != fixtures.PaperFigure2Nodes {
		t.Errorf("NumNodes = %d", d.NumNodes())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseXMLString("<a><b></a>"); err == nil {
		t.Error("malformed XML accepted")
	}
	if _, err := LoadFile("/nonexistent/file.xml"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := Generate("bogus", 1, 0); err == nil {
		t.Error("bogus dataset accepted")
	}
	if _, err := ParseQuery("not a query"); err == nil {
		t.Error("bad query accepted")
	}
}

func TestParseXMLReader(t *testing.T) {
	d, err := ParseXML(strings.NewReader(fixtures.PaperFigure2))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != fixtures.PaperFigure2Nodes {
		t.Errorf("NumNodes = %d", d.NumNodes())
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte(fixtures.PaperFigure2), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != fixtures.PaperFigure2Nodes {
		t.Errorf("NumNodes = %d", d.NumNodes())
	}
}

func TestCountAndEstimateAgree(t *testing.T) {
	d := fig2Doc(t)
	syn, err := BuildSynopsis(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"/a/c/s/p", "//s//s//p", "/a/c/s[t]/p", "//p", "/a/c/s/s/t",
	} {
		actual, err := d.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		est, err := syn.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		// With a full 1BP HET on this small document the estimates are
		// exact or near-exact.
		if math.Abs(est-float64(actual)) > 1 {
			t.Errorf("%s: est %g, actual %d", q, est, actual)
		}
	}
}

func TestKernelOnlyVsHET(t *testing.T) {
	d, err := ParseXMLString(fixtures.PaperFigure4)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := KernelOnly(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := BuildSynopsis(d, &Config{HET: &HETConfig{MBP: 1, BselThreshold: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if bare.HETSizeBytes() != 0 {
		t.Error("kernel-only synopsis has HET bytes")
	}
	if full.HETSizeBytes() == 0 {
		t.Error("full synopsis has empty HET")
	}
	actual, _ := d.Count("/a/b/d/e")
	bareEst, _ := bare.Estimate("/a/b/d/e")
	fullEst, _ := full.Estimate("/a/b/d/e")
	if !approx(bareEst, 20.0*5/14, 1e-9) {
		t.Errorf("bare = %g, want Example 4's 7.14", bareEst)
	}
	if !approx(fullEst, float64(actual), 1e-9) {
		t.Errorf("full = %g, want %d", fullEst, actual)
	}
}

func TestSetBudgetShrinksHET(t *testing.T) {
	d, err := Generate("dblp", 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := BuildSynopsis(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	fullSize := syn.SizeBytes()
	resident, total := syn.HETEntries()
	if resident == 0 || total == 0 {
		t.Fatalf("HET entries: %d/%d", resident, total)
	}
	syn.SetBudget(syn.KernelSizeBytes() + 64)
	if got := syn.SizeBytes(); got >= fullSize {
		t.Errorf("SetBudget did not shrink: %d >= %d", got, fullSize)
	}
	r2, _ := syn.HETEntries()
	if r2 > 4 {
		t.Errorf("resident after tiny budget = %d", r2)
	}
	// Estimates still work.
	if _, err := syn.Estimate("/dblp/article"); err != nil {
		t.Fatal(err)
	}
}

func TestFeedbackImprovesEstimate(t *testing.T) {
	d, err := ParseXMLString(fixtures.PaperFigure4)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := BuildSynopsis(d, &Config{HET: &HETConfig{MBP: 0}}) // paths only
	if err != nil {
		t.Fatal(err)
	}
	q := "/a/b/d[f]/e"
	actual, _ := d.Count(q)
	before, _ := syn.Estimate(q)
	if err := syn.Feedback(q, float64(actual)); err != nil {
		t.Fatal(err)
	}
	after, _ := syn.Estimate(q)
	if math.Abs(after-float64(actual)) > math.Abs(before-float64(actual)) {
		t.Errorf("feedback worsened: before %g after %g actual %d", before, after, actual)
	}
}

func TestIncrementalUpdate(t *testing.T) {
	d := fig2Doc(t)
	syn, err := KernelOnly(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := syn.Estimate("/a/u")
	if !approx(before, 1, 1e-9) {
		t.Fatalf("|/a/u| = %g", before)
	}
	if err := syn.AddSubtree([]string{"a"}, "<u/><u/>"); err != nil {
		t.Fatal(err)
	}
	after, _ := syn.Estimate("/a/u")
	if !approx(after, 3, 1e-9) {
		t.Errorf("|/a/u| after add = %g, want 3", after)
	}
	if err := syn.RemoveSubtree([]string{"a"}, "<u/><u/>"); err != nil {
		t.Fatal(err)
	}
	restored, _ := syn.Estimate("/a/u")
	if !approx(restored, 1, 1e-9) {
		t.Errorf("|/a/u| after remove = %g, want 1", restored)
	}
}

func TestSynopsisSerializationRoundTrip(t *testing.T) {
	d, err := ParseXMLString(fixtures.PaperFigure4)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := BuildSynopsis(d, &Config{HET: &HETConfig{MBP: 1, BselThreshold: 0.5}, CardThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := syn.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, wrote %d", n, buf.Len())
	}
	loaded, err := ReadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"/a/b/d/e", "/a/b/d[f]/e", "//d//e", "/a/c/d"} {
		a, _ := syn.Estimate(q)
		b, _ := loaded.Estimate(q)
		if !approx(a, b, 1e-9) {
			t.Errorf("%s: loaded %g != original %g", q, b, a)
		}
	}
	if loaded.KernelSizeBytes() != syn.KernelSizeBytes() {
		t.Error("kernel size changed across serialization")
	}
}

func TestReadSynopsisGarbage(t *testing.T) {
	if _, err := ReadSynopsis(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSynopsis(bytes.NewReader([]byte("xy"))); err == nil {
		t.Error("short input accepted")
	}
	// A future format version must be rejected with a version message, not
	// misparsed as a kernel.
	if _, err := ReadSynopsis(bytes.NewReader([]byte{'X', 'S', 'N', 'P', 99})); err == nil ||
		!strings.Contains(err.Error(), "version 99") {
		t.Errorf("future version error = %v", err)
	}
}

// TestSnapshotWriteToVersioned pins the v2 stream header so the on-disk
// format cannot drift silently.
func TestSnapshotWriteToVersioned(t *testing.T) {
	d := fig2Doc(t)
	syn, err := BuildSynopsis(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := syn.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	head := buf.Bytes()[:5]
	want := []byte{'X', 'S', 'N', 'P', SnapshotVersion}
	if !bytes.Equal(head, want) {
		t.Fatalf("stream header = %v, want %v", head, want)
	}
}

// TestReadSynopsisV1Fixture guards back-compat: the checked-in v1 snapshot
// (written byte-for-byte by the pre-versioning build, no format header) must
// keep loading under the versioned reader with its state intact.
func TestReadSynopsisV1Fixture(t *testing.T) {
	if len(fixtures.SynopsisV1) == 0 {
		t.Fatal("empty v1 fixture")
	}
	if !bytes.HasPrefix(fixtures.SynopsisV1, []byte("XSK1")) {
		t.Fatalf("fixture is not a v1 stream (starts %q)", fixtures.SynopsisV1[:4])
	}
	syn, err := ReadSynopsis(bytes.NewReader(fixtures.SynopsisV1))
	if err != nil {
		t.Fatalf("v1 snapshot no longer loads: %v", err)
	}
	resident, total := syn.HETEntries()
	if resident != 14 || total != 14 {
		t.Errorf("HET entries = %d/%d, want 14/14", resident, total)
	}
	for q, want := range map[string]float64{
		"/a/c/s/s/t": 2,  // fed back into the fixture
		"//s//p":     14, // fed back into the fixture
		"/a/c/s":     5,
		"//s//s//p":  5,
	} {
		got, err := syn.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, want, 1e-9) {
			t.Errorf("%s = %g, want %g", q, got, want)
		}
	}
	// A v1 load re-serializes in the current format and must round-trip.
	var buf bytes.Buffer
	if _, err := syn.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ReadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := syn.Estimate("//s//p")
	b, _ := again.Estimate("//s//p")
	if !approx(a, b, 1e-9) {
		t.Errorf("v1→v2 round trip changed estimate: %g != %g", b, a)
	}
}

// TestFeedbackDeltaReplay asserts the durability contract behind O(delta)
// persistence: applying the extracted HETDelta to a second synopsis
// reproduces the fed-back synopsis's estimates without re-estimation.
func TestFeedbackDeltaReplay(t *testing.T) {
	build := func() *Synopsis {
		d := fig2Doc(t)
		syn, err := BuildSynopsis(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		return syn
	}
	fed, replica := build(), build()
	// One simple path (stores an actual cardinality) and one leaf-branching
	// pattern (stores a correlated backward selectivity).
	for q, actual := range map[string]float64{"/a/c/s/s/t": 2, "/a/c/s[t]/p": 7} {
		pq, err := ParseQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		_, delta, applied := fed.FeedbackQueryDelta(pq, actual)
		if !applied {
			t.Fatalf("feedback %s not applied", q)
		}
		replica.ApplyHETDelta(delta)
	}
	for _, q := range []string{"/a/c/s/s/t", "/a/c/s[t]/p", "/a/c/s", "//s//s//p"} {
		a, _ := fed.Estimate(q)
		b, _ := replica.Estimate(q)
		if !approx(a, b, 1e-9) {
			t.Errorf("%s: replica %g != fed %g", q, b, a)
		}
	}
}

func TestTreeSketchBaseline(t *testing.T) {
	d := fig2Doc(t)
	ts, info, err := BuildTreeSketch(d, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if info.DNF {
		t.Error("unexpected DNF")
	}
	est, err := ts.Estimate("//p")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(est, 17, 1e-6) {
		t.Errorf("|//p| = %g, want 17 (exact under count-stability)", est)
	}
	if ts.SizeBytes() <= 0 {
		t.Error("SizeBytes = 0")
	}
	// DNF path.
	if _, info, err := BuildTreeSketch(d, 64, TreeSketchOptions{OpBudget: 5}); err != ErrTreeSketchDNF || !info.DNF {
		t.Errorf("err = %v, info = %+v; want DNF", err, info)
	}
}

func TestEstimateStreaming(t *testing.T) {
	d := fig2Doc(t)
	syn, err := BuildSynopsis(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"/a/c/s/p", "//s//s//p", "/a/c/s[t]/p", "//*"} {
		want, _ := syn.Estimate(q)
		got, streamed, err := syn.EstimateStreaming(q)
		if err != nil {
			t.Fatal(err)
		}
		if !streamed {
			t.Errorf("%s: expected streaming path", q)
		}
		if !approx(got, want, 1e-9) {
			t.Errorf("%s: streaming %g != standard %g", q, got, want)
		}
	}
	// Unsupported shape falls back.
	want, _ := syn.Estimate("/a/c[s/s]/t")
	got, streamed, err := syn.EstimateStreaming("/a/c[s/s]/t")
	if err != nil || streamed || !approx(got, want, 1e-9) {
		t.Errorf("fallback: got %g streamed %v err %v, want %g", got, streamed, err, want)
	}
	if _, _, err := syn.EstimateStreaming("((("); err == nil {
		t.Error("parse error not propagated")
	}
}

func TestWithoutPredicates(t *testing.T) {
	q := MustParseQuery("/a/b[c][d]/e[f]")
	if got := q.WithoutPredicates().String(); got != "/a/b/e" {
		t.Errorf("WithoutPredicates = %s", got)
	}
	if q.String() != "/a/b[c][d]/e[f]" {
		t.Error("original mutated")
	}
}

func TestFeedbackOnlySynopsis(t *testing.T) {
	d := fig2Doc(t)
	syn, err := BuildSynopsis(d, &Config{HET: &HETConfig{FeedbackOnly: true}})
	if err != nil {
		t.Fatal(err)
	}
	if r, total := syn.HETEntries(); r != 0 || total != 0 {
		t.Fatalf("feedback-only synopsis starts with %d/%d entries", r, total)
	}
	// Feedback populates it.
	if err := syn.Feedback("/a/c/s[t]/p", 4); err != nil {
		t.Fatal(err)
	}
	if _, total := syn.HETEntries(); total != 1 {
		t.Errorf("entries after feedback = %d, want 1", total)
	}
	got, _ := syn.Estimate("/a/c/s[t]/p")
	if !approx(got, 4, 0.5) {
		t.Errorf("estimate after feedback = %g, want ≈4", got)
	}
}

func TestQueryAPI(t *testing.T) {
	q := MustParseQuery("//regions/australia/item[shipping]/location")
	if q.Class() != "CP" {
		t.Errorf("Class = %s", q.Class())
	}
	if q.IsRecursive() {
		t.Error("not recursive")
	}
	if q.String() != "//regions/australia/item[shipping]/location" {
		t.Errorf("String = %s", q)
	}
	if _, ok := q.Actual(); ok {
		t.Error("hand-parsed query claims an actual")
	}
	r := MustParseQuery("//s//s")
	if !r.IsRecursive() {
		t.Error("//s//s should be recursive")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseQuery on garbage did not panic")
		}
	}()
	MustParseQuery("((")
}

func TestWorkloadAPI(t *testing.T) {
	d, err := Generate("xmark", 0.002, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp := d.SimplePathQueries(0)
	if len(sp) == 0 {
		t.Fatal("no SP queries")
	}
	for _, q := range sp[:min(5, len(sp))] {
		act, ok := q.Actual()
		if !ok {
			t.Fatalf("%s has no actual", q)
		}
		got, _ := d.Count(q.String())
		if got != act {
			t.Errorf("%s: actual %d, recount %d", q, act, got)
		}
	}
	bp, err := d.RandomWorkload("BP", 10, 1, 5)
	if err != nil || len(bp) != 10 {
		t.Fatalf("BP workload: %v, %d", err, len(bp))
	}
	cp, err := d.RandomWorkload("cp", 10, 1, 5)
	if err != nil || len(cp) != 10 {
		t.Fatalf("CP workload: %v, %d", err, len(cp))
	}
	if _, err := d.RandomWorkload("XX", 1, 1, 1); err == nil {
		t.Error("bad class accepted")
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	d := fig2Doc(t)
	var buf bytes.Buffer
	if err := d.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseXMLString(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumNodes() != d.NumNodes() {
		t.Errorf("round trip %d != %d", d2.NumNodes(), d.NumNodes())
	}
}

func TestEPTStats(t *testing.T) {
	d := fig2Doc(t)
	syn, _ := KernelOnly(d, nil)
	if _, err := syn.Estimate("//p"); err != nil {
		t.Fatal(err)
	}
	nodes, truncated := syn.EPTStats()
	if nodes != 14 || truncated {
		t.Errorf("EPT stats = %d/%v, want 14/false", nodes, truncated)
	}
	if !strings.Contains(syn.KernelString(), "(s,p) = (5:9, 1:2, 2:3)") {
		t.Error("KernelString missing paper edge")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestReplayNewLabelThenEstimate is the regression test for the
// publish-shortcut bug: Replay applies subtree records to the kernel in
// place, so a replayed fragment that interns a brand-new label leaves the
// kernel pointer unchanged while the dictionary grows — the post-Replay
// publish must not reuse the pre-Replay frozen dictionary, or the first
// estimate panics resolving the new label during EPT construction.
func TestReplayNewLabelThenEstimate(t *testing.T) {
	d, err := ParseXMLString("<a><b><c/></b></a>")
	if err != nil {
		t.Fatal(err)
	}
	syn, err := BuildSynopsis(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := syn.Estimate("/a/b"); err != nil { // pin a pre-replay snapshot path
		t.Fatal(err)
	}
	err = syn.Replay(func() error {
		if err := syn.Feedback("/a/b/c", 5); err != nil {
			return err
		}
		// Brand-new labels: the replayed fragment interns "z" and "w".
		return syn.AddSubtree([]string{"a"}, "<z><w/></z>")
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := syn.Estimate("/a/z/w")
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("/a/z/w after replay = %v, want 1", got)
	}
	if got, err := syn.Estimate("/a/b/c"); err != nil || got != 5 {
		t.Fatalf("/a/b/c after replayed feedback = %v (%v), want 5", got, err)
	}
	// One Replay = one published version on top of the initial snapshot.
	if v := syn.Snapshot().Version(); v != 2 {
		t.Fatalf("version after replay = %d, want 2 (batched publication)", v)
	}
}
